"""Lexicographic direct access (paper Theorems 3.18/3.24, Cor. 3.22).

For a free-connex acyclic query (join queries included) and a variable
order admitting a layered join tree — equivalently, by [27], an order
with no disruptive trio — preprocessing is Õ(m) and each access costs
Õ(log m):

1. reduce to an acyclic join query over the free variables
   (:func:`repro.joins.fc_reduce.free_connex_reduce`);
2. find a layered join tree for the order
   (:mod:`repro.direct_access.layered`);
3. bottom-up, count each tuple's extensions in its subtree, and store,
   per (node, parent-separator key), the tuples sorted by their own
   variables with prefix sums of those counts;
4. ``access(i)`` descends the tree, selecting each node's tuple by
   binary search in the prefix sums and splitting the residual index
   across the children blocks mixed-radix style.

**Columnar preprocessing.**  When the reduced frames are columnar
(:class:`repro.joins.vectorized.ColumnarFrame` over one dictionary),
step 3 is an array program: subtree counts are binary-search gathers of
child block totals (:func:`repro.db.columnar.lookup_rows`) multiplied
columnwise; the per-separator blocks come from one ``np.lexsort`` over
(separator codes, order-preserving *value ranks* of the own columns —
dictionary codes are first-seen, not sorted, so the own columns are
remapped through a rank table before sorting); and the prefix sums are
one ``np.cumsum``.  No row is decoded during preprocessing —
``access(i)`` descends over codes via ``np.searchsorted`` and decodes
only the single returned answer.  Subtree counts use int64 (exact
below 2^63; the Python store keeps bigints).

When no layered tree exists (a disruptive trio), the ``strict=False``
fallback materializes and sorts the whole result — the superlinear
preprocessing that Lemma 3.23 proves necessary.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.columnar import block_slices, lookup_rows
from repro.db.database import Database
from repro.direct_access.layered import (
    VIRTUAL_ROOT,
    LayeredTree,
    find_layered_tree,
)
from repro.hypergraph.freeconnex import is_free_connex
from repro.joins.fc_reduce import free_connex_reduce
from repro.joins.generic_join import generic_join
from repro.joins.vectorized import columnar_family
from repro.query.cq import ConjunctiveQuery

Row = Tuple[object, ...]


class _NodeStore:
    """Per-node access structures: grouped, sorted, prefix-summed."""

    __slots__ = ("groups", "sep_positions", "own_positions")

    def __init__(self) -> None:
        # key -> (sorted own projections, rows, cumulative counts)
        self.groups: Dict[Row, Tuple[List[Row], List[Row], List[int]]] = {}
        self.sep_positions: Tuple[int, ...] = ()
        self.own_positions: Tuple[int, ...] = ()

    def total(self, key: Row) -> int:
        group = self.groups.get(key)
        return group[2][-1] if group else 0

    def locate(self, key: Row, index: int) -> Tuple[Row, int]:
        """The row covering ``index`` within the key's block, and the
        cumulative count preceding that row."""
        _, rows, cumulative = self.groups[key]
        slot = bisect_right(cumulative, index)
        previous = cumulative[slot - 1] if slot else 0
        return rows[slot], previous


class _ColumnarNodeStore:
    """Per-node access structures over lexsorted code columns.

    ``codes`` holds the node's rows sorted by (separator codes, own
    value-ranks); ``cum0`` is the exclusive prefix sum of the subtree
    counts in that order; ``groups`` maps a coded separator key to its
    contiguous ``[start, end)`` slice.  ``group_reps``/``group_totals``
    expose the per-key totals as arrays so the *parent's* count pass
    stays vectorized.
    """

    __slots__ = ("codes", "cum0", "groups", "group_reps", "group_totals")

    def __init__(self) -> None:
        self.codes: np.ndarray = np.empty((0, 0), dtype=np.int64)
        self.cum0: np.ndarray = np.zeros(1, dtype=np.int64)
        self.groups: Dict[Tuple[int, ...], Tuple[int, int]] = {}
        self.group_reps: np.ndarray = np.empty((0, 0), dtype=np.int64)
        self.group_totals: np.ndarray = np.empty(0, dtype=np.int64)

    def total(self, key: Row) -> int:
        slice_ = self.groups.get(tuple(key))
        if slice_ is None:
            return 0
        start, end = slice_
        return int(self.cum0[end] - self.cum0[start])

    def locate(self, key: Row, index: int) -> Tuple[Row, int]:
        start, end = self.groups[tuple(key)]
        target = int(self.cum0[start]) + index
        slot = start + int(
            np.searchsorted(
                self.cum0[start + 1 : end + 1], target, side="right"
            )
        )
        previous = int(self.cum0[slot] - self.cum0[start])
        return tuple(self.codes[slot].tolist()), previous


class LexDirectAccess:
    """Direct access to query answers under a lexicographic order.

    ``order`` lists the free variables, most significant first.
    Answers are returned as tuples in *head* order; their ranking
    follows ``order``.  ``access(i)`` raises :class:`IndexError` when
    ``i`` is past the last answer (the paper's "error" convention).

    ``store_backend`` reports which preprocessing ran: ``"columnar"``
    (vectorized, zero row decodes) when the reduced frames are
    columnar, ``"python"`` otherwise.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        order: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> None:
        self.query = query
        self.head = tuple(query.head)
        if not self.head:
            raise ValueError("Boolean queries have no answers to access")
        self.order: Tuple[str, ...] = (
            tuple(order) if order is not None else self.head
        )
        if sorted(self.order) != sorted(self.head):
            raise ValueError(
                "order must be a permutation of the head variables"
            )
        self.mode = "layered"
        self.store_backend = "python"
        self._materialized: Optional[List[Row]] = None
        self._count = 0
        self._dictionary = None

        layered: Optional[LayeredTree] = None
        reduced = None
        if is_free_connex(query):
            reduced = free_connex_reduce(query, db)
            if reduced.is_empty:
                self._layered = None
                self._stores: Dict[int, _NodeStore] = {}
                return
            bags = {
                node: frozenset(frame.variables)
                for node, frame in reduced.frames.items()
            }
            layered = find_layered_tree(bags, self.order)
        if layered is None:
            if strict:
                raise ValueError(
                    f"query {query.name} admits no layered join tree for "
                    f"order {self.order} (disruptive trio or not "
                    "free-connex); pass strict=False for the "
                    "materializing fallback"
                )
            self.mode = "materialized"
            self._materialize(db)
            return
        self._layered = layered
        self._reduced = reduced
        self._dictionary = columnar_family(reduced.frames.values())
        if self._dictionary is not None:
            self.store_backend = "columnar"
            self._build_stores_columnar()
        else:
            self._build_stores()

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def _materialize(self, db: Database) -> None:
        key_positions = [self.head.index(v) for v in self.order]
        answers = list(generic_join(self.query, db))
        answers.sort(key=lambda row: tuple(row[p] for p in key_positions))
        self._materialized = answers
        self._count = len(answers)

    def _node_separator(self, node: int) -> Tuple[str, ...]:
        """Variables shared with the parent, in frame-column order."""
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        parent = layered.parent[node]
        if parent == VIRTUAL_ROOT:
            return ()
        frame = reduced.frames[node]
        parent_vars = reduced.frames[parent].variables
        return tuple(v for v in frame.variables if v in parent_vars)

    def _finish_count(self, stores: Dict[int, object]) -> None:
        layered = self._layered
        assert layered is not None
        self._stores = stores
        total = 1
        for child in layered.children[VIRTUAL_ROOT]:
            total *= stores[child].total(())
        self._count = total if layered.children[VIRTUAL_ROOT] else 0

    def _build_stores(self) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        stores: Dict[int, _NodeStore] = {}
        # Bottom-up over the layered tree: reversed preorder works
        # because preorder parents precede children.
        for node in reversed(layered.preorder):
            if node == VIRTUAL_ROOT:
                continue
            frame = reduced.frames[node]
            sep_vars = self._node_separator(node)
            own_vars = layered.own[node]
            store = _NodeStore()
            store.sep_positions = frame.positions(sep_vars)
            store.own_positions = frame.positions(own_vars)
            child_stores = [
                (child, stores[child]) for child in layered.children[node]
            ]
            grouped: Dict[Row, List[Tuple[Row, Row, int]]] = {}
            for row in frame.rows:
                count = 1
                for child, child_store in child_stores:
                    child_frame = reduced.frames[child]
                    child_sep = tuple(
                        v
                        for v in child_frame.variables
                        if v in frame.variables
                    )
                    key = tuple(
                        row[p] for p in frame.positions(child_sep)
                    )
                    count *= child_store.total(key)
                    if not count:
                        break
                if not count:
                    # Cannot happen after full reduction; kept so that
                    # unreduced inputs still yield correct results.
                    continue
                sep_key = tuple(row[p] for p in store.sep_positions)
                own_key = tuple(row[p] for p in store.own_positions)
                grouped.setdefault(sep_key, []).append(
                    (own_key, row, count)
                )
            for sep_key, entries in grouped.items():
                entries.sort(key=lambda e: e[0])
                own_keys = [e[0] for e in entries]
                rows = [e[1] for e in entries]
                cumulative: List[int] = []
                running = 0
                for _, _, count in entries:
                    running += count
                    cumulative.append(running)
                store.groups[sep_key] = (own_keys, rows, cumulative)
            stores[node] = store
        self._finish_count(stores)

    def _build_stores_columnar(self) -> None:
        """Vectorized preprocessing over code columns (zero decodes)."""
        layered = self._layered
        reduced = self._reduced
        dictionary = self._dictionary
        assert (
            layered is not None
            and reduced is not None
            and dictionary is not None
        )
        cardinality = len(dictionary)
        values = dictionary.values()
        stores: Dict[int, _ColumnarNodeStore] = {}
        for node in reversed(layered.preorder):
            if node == VIRTUAL_ROOT:
                continue
            frame = reduced.frames[node]
            sep_pos = list(frame.positions(self._node_separator(node)))
            own_pos = list(frame.positions(layered.own[node]))
            codes = frame.codes()
            counts = np.ones(len(codes), dtype=np.int64)
            for child in layered.children[node]:
                child_store = stores[child]
                child_frame = reduced.frames[child]
                child_sep = tuple(
                    v
                    for v in child_frame.variables
                    if v in frame.variables
                )
                sub = codes[:, list(frame.positions(child_sep))]
                index = lookup_rows(
                    sub, child_store.group_reps, cardinality
                )
                found = index >= 0
                counts *= np.where(
                    found,
                    child_store.group_totals[np.where(found, index, 0)],
                    0,
                )
            keep = counts > 0
            if not keep.all():
                codes, counts = codes[keep], counts[keep]
            n = len(codes)
            # Dictionary codes are first-seen, not value-ordered; remap
            # the own columns through value ranks so the lexsort below
            # realizes the *value* order the access contract promises.
            if own_pos and n:
                own_codes = codes[:, own_pos]
                used = np.unique(own_codes)
                by_value = sorted(
                    used.tolist(), key=lambda code: values[code]
                )
                table = np.zeros(int(used[-1]) + 1, dtype=np.int64)
                table[np.asarray(by_value, dtype=np.int64)] = np.arange(
                    len(by_value), dtype=np.int64
                )
                own_ranks = table[own_codes]
            else:
                own_ranks = np.empty((n, 0), dtype=np.int64)
            sep_codes = codes[:, sep_pos] if sep_pos else codes[:, :0]
            sort_keys = [
                own_ranks[:, j]
                for j in range(own_ranks.shape[1] - 1, -1, -1)
            ] + [
                sep_codes[:, j]
                for j in range(sep_codes.shape[1] - 1, -1, -1)
            ]
            if sort_keys and n > 1:
                order = np.lexsort(tuple(sort_keys))
                codes, counts = codes[order], counts[order]
                sep_codes = (
                    codes[:, sep_pos] if sep_pos else codes[:, :0]
                )
            representatives, starts, ends = block_slices(sep_codes)
            store = _ColumnarNodeStore()
            store.codes = codes
            store.cum0 = np.concatenate(
                ([0], np.cumsum(counts, dtype=np.int64))
            )
            store.group_reps = representatives
            store.group_totals = store.cum0[ends] - store.cum0[starts]
            store.groups = {
                tuple(rep): (int(start), int(end))
                for rep, start, end in zip(
                    store.group_reps.tolist(),
                    starts.tolist(),
                    ends.tolist(),
                )
            }
            stores[node] = store
        self._finish_count(stores)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def access(self, index: int) -> Row:
        """The answer at ``index`` (0-based) in the lexicographic order."""
        if index < 0 or index >= self._count:
            raise IndexError(
                f"index {index} out of range for {self._count} answers"
            )
        if self.mode == "materialized":
            assert self._materialized is not None
            return self._materialized[index]
        head_pos = {v: i for i, v in enumerate(self.head)}
        assignment: List[object] = [None] * len(self.head)
        # _select assigns each node's row and recurses; kick off at the
        # virtual root with the full index.  Columnar stores descend
        # over codes; only the returned answer is decoded.
        self._descend_children(VIRTUAL_ROOT, index, assignment, head_pos)
        if self.store_backend == "columnar":
            decode = self._dictionary.decode
            return tuple(decode(code) for code in assignment)
        return tuple(assignment)

    def _select(
        self,
        node: int,
        index: int,
        assignment: List[object],
        head_pos: Dict[str, int],
    ) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        store = self._stores[node]
        if layered.parent[node] == VIRTUAL_ROOT:
            key: Row = ()
        else:
            key = tuple(
                assignment[head_pos[v]]
                for v in self._node_separator(node)
            )
        row, previous = store.locate(key, index)
        frame = reduced.frames[node]
        for position, variable in enumerate(frame.variables):
            assignment[head_pos[variable]] = row[position]
        residual = index - previous
        # Recurse into this node's children with the leftover index.
        self._descend_children(node, residual, assignment, head_pos)

    def _descend_children(
        self,
        node: int,
        residual: int,
        assignment: List[object],
        head_pos: Dict[str, int],
    ) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        children = layered.children[node]
        if not children:
            return
        sizes: List[int] = []
        for child in children:
            if node == VIRTUAL_ROOT:
                key: Row = ()
            else:
                key = tuple(
                    assignment[head_pos[v]]
                    for v in self._node_separator(child)
                )
            sizes.append(self._stores[child].total(key))
        suffix_products = [1] * (len(children) + 1)
        for j in range(len(children) - 1, -1, -1):
            suffix_products[j] = suffix_products[j + 1] * sizes[j]
        for j, child in enumerate(children):
            radix = suffix_products[j + 1]
            child_index = residual // radix
            residual = residual % radix
            self._select(child, child_index, assignment, head_pos)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def materialize(self) -> List[Row]:
        """All answers in order (test helper; output-sized)."""
        return [self.access(i) for i in range(self._count)]
