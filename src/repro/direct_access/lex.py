"""Lexicographic direct access (paper Theorems 3.18/3.24, Cor. 3.22).

For a free-connex acyclic query (join queries included) and a variable
order admitting a layered join tree — equivalently, by [27], an order
with no disruptive trio — preprocessing is Õ(m) and each access costs
Õ(log m):

1. reduce to an acyclic join query over the free variables
   (:func:`repro.joins.fc_reduce.free_connex_reduce`);
2. find a layered join tree for the order
   (:mod:`repro.direct_access.layered`);
3. bottom-up, count each tuple's extensions in its subtree, and store,
   per (node, parent-separator key), the tuples sorted by their own
   variables with prefix sums of those counts;
4. ``access(i)`` descends the tree, selecting each node's tuple by
   binary search in the prefix sums and splitting the residual index
   across the children blocks mixed-radix style.

When no layered tree exists (a disruptive trio), the ``strict=False``
fallback materializes and sorts the whole result — the superlinear
preprocessing that Lemma 3.23 proves necessary.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.database import Database
from repro.direct_access.layered import (
    VIRTUAL_ROOT,
    LayeredTree,
    find_layered_tree,
)
from repro.hypergraph.freeconnex import is_free_connex
from repro.joins.fc_reduce import free_connex_reduce
from repro.joins.generic_join import generic_join
from repro.query.cq import ConjunctiveQuery

Row = Tuple[object, ...]


class _NodeStore:
    """Per-node access structures: grouped, sorted, prefix-summed."""

    __slots__ = ("groups", "sep_positions", "own_positions")

    def __init__(self) -> None:
        # key -> (sorted own projections, rows, cumulative counts)
        self.groups: Dict[Row, Tuple[List[Row], List[Row], List[int]]] = {}
        self.sep_positions: Tuple[int, ...] = ()
        self.own_positions: Tuple[int, ...] = ()

    def total(self, key: Row) -> int:
        group = self.groups.get(key)
        return group[2][-1] if group else 0


class LexDirectAccess:
    """Direct access to query answers under a lexicographic order.

    ``order`` lists the free variables, most significant first.
    Answers are returned as tuples in *head* order; their ranking
    follows ``order``.  ``access(i)`` raises :class:`IndexError` when
    ``i`` is past the last answer (the paper's "error" convention).
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        order: Optional[Sequence[str]] = None,
        strict: bool = True,
    ) -> None:
        self.query = query
        self.head = tuple(query.head)
        if not self.head:
            raise ValueError("Boolean queries have no answers to access")
        self.order: Tuple[str, ...] = (
            tuple(order) if order is not None else self.head
        )
        if sorted(self.order) != sorted(self.head):
            raise ValueError(
                "order must be a permutation of the head variables"
            )
        self.mode = "layered"
        self._materialized: Optional[List[Row]] = None
        self._count = 0

        layered: Optional[LayeredTree] = None
        reduced = None
        if is_free_connex(query):
            reduced = free_connex_reduce(query, db)
            if reduced.is_empty:
                self._layered = None
                self._stores: Dict[int, _NodeStore] = {}
                return
            bags = {
                node: frozenset(frame.variables)
                for node, frame in reduced.frames.items()
            }
            layered = find_layered_tree(bags, self.order)
        if layered is None:
            if strict:
                raise ValueError(
                    f"query {query.name} admits no layered join tree for "
                    f"order {self.order} (disruptive trio or not "
                    "free-connex); pass strict=False for the "
                    "materializing fallback"
                )
            self.mode = "materialized"
            self._materialize(db)
            return
        self._layered = layered
        self._reduced = reduced
        self._build_stores()

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def _materialize(self, db: Database) -> None:
        key_positions = [self.head.index(v) for v in self.order]
        answers = list(generic_join(self.query, db))
        answers.sort(key=lambda row: tuple(row[p] for p in key_positions))
        self._materialized = answers
        self._count = len(answers)

    def _build_stores(self) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        order_rank = {v: i for i, v in enumerate(self.order)}
        stores: Dict[int, _NodeStore] = {}
        # Bottom-up over the layered tree: reversed preorder works
        # because preorder parents precede children.
        subtotal: Dict[int, Dict[Row, int]] = {}
        for node in reversed(layered.preorder):
            if node == VIRTUAL_ROOT:
                continue
            frame = reduced.frames[node]
            parent = layered.parent[node]
            if parent == VIRTUAL_ROOT:
                sep_vars: Tuple[str, ...] = ()
            else:
                parent_vars = reduced.frames[parent].variables
                sep_vars = tuple(
                    v for v in frame.variables if v in parent_vars
                )
            own_vars = layered.own[node]
            store = _NodeStore()
            store.sep_positions = frame.positions(sep_vars)
            store.own_positions = frame.positions(own_vars)
            child_stores = [
                (child, stores[child]) for child in layered.children[node]
            ]
            grouped: Dict[Row, List[Tuple[Row, Row, int]]] = {}
            for row in frame.rows:
                count = 1
                for child, child_store in child_stores:
                    child_frame = reduced.frames[child]
                    child_sep = tuple(
                        v
                        for v in child_frame.variables
                        if v in frame.variables
                    )
                    key = tuple(
                        row[p] for p in frame.positions(child_sep)
                    )
                    count *= child_store.total(key)
                    if not count:
                        break
                if not count:
                    # Cannot happen after full reduction; kept so that
                    # unreduced inputs still yield correct results.
                    continue
                sep_key = tuple(row[p] for p in store.sep_positions)
                own_key = tuple(row[p] for p in store.own_positions)
                grouped.setdefault(sep_key, []).append(
                    (own_key, row, count)
                )
            for sep_key, entries in grouped.items():
                entries.sort(key=lambda e: e[0])
                own_keys = [e[0] for e in entries]
                rows = [e[1] for e in entries]
                cumulative: List[int] = []
                running = 0
                for _, _, count in entries:
                    running += count
                    cumulative.append(running)
                store.groups[sep_key] = (own_keys, rows, cumulative)
            stores[node] = store
        self._stores = stores
        total = 1
        for child in layered.children[VIRTUAL_ROOT]:
            total *= stores[child].total(())
        self._count = total if layered.children[VIRTUAL_ROOT] else 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def access(self, index: int) -> Row:
        """The answer at ``index`` (0-based) in the lexicographic order."""
        if index < 0 or index >= self._count:
            raise IndexError(
                f"index {index} out of range for {self._count} answers"
            )
        if self.mode == "materialized":
            assert self._materialized is not None
            return self._materialized[index]
        head_pos = {v: i for i, v in enumerate(self.head)}
        assignment: List[object] = [None] * len(self.head)
        # _select assigns each node's row and recurses; kick off at the
        # virtual root with the full index.
        self._descend_children(VIRTUAL_ROOT, index, assignment, head_pos)
        return tuple(assignment)

    def _select(
        self,
        node: int,
        index: int,
        assignment: List[object],
        head_pos: Dict[str, int],
    ) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        store = self._stores[node]
        parent = layered.parent[node]
        if parent == VIRTUAL_ROOT:
            key: Row = ()
        else:
            frame = reduced.frames[node]
            parent_vars = reduced.frames[parent].variables
            sep_vars = tuple(
                v for v in frame.variables if v in parent_vars
            )
            key = tuple(assignment[head_pos[v]] for v in sep_vars)
        own_keys, rows, cumulative = store.groups[key]
        slot = bisect_right(cumulative, index)
        previous = cumulative[slot - 1] if slot else 0
        row = rows[slot]
        frame = reduced.frames[node]
        for position, variable in enumerate(frame.variables):
            assignment[head_pos[variable]] = row[position]
        residual = index - previous
        # Recurse into this node's children with the leftover index.
        self._descend_children(node, residual, assignment, head_pos)

    def _descend_children(
        self,
        node: int,
        residual: int,
        assignment: List[object],
        head_pos: Dict[str, int],
    ) -> None:
        layered = self._layered
        reduced = self._reduced
        assert layered is not None and reduced is not None
        children = layered.children[node]
        if not children:
            return
        sizes: List[int] = []
        for child in children:
            if node == VIRTUAL_ROOT:
                key: Row = ()
            else:
                child_frame = reduced.frames[child]
                parent_frame = reduced.frames[node]
                sep_vars = tuple(
                    v for v in child_frame.variables
                    if v in parent_frame.variables
                )
                key = tuple(assignment[head_pos[v]] for v in sep_vars)
            sizes.append(self._stores[child].total(key))
        suffix_products = [1] * (len(children) + 1)
        for j in range(len(children) - 1, -1, -1):
            suffix_products[j] = suffix_products[j + 1] * sizes[j]
        for j, child in enumerate(children):
            radix = suffix_products[j + 1]
            child_index = residual // radix
            residual = residual % radix
            self._select(child, child_index, assignment, head_pos)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def materialize(self) -> List[Row]:
        """All answers in order (test helper; output-sized)."""
        return [self.access(i) for i in range(self._count)]
