"""Order-compatible ("layered") join trees for lexicographic direct access.

The direct-access algorithm of Theorem 3.24 needs a rooted,
child-ordered join tree whose depth-first preorder spells out the
requested variable order: each node's *own* variables (bag minus the
separator to its parent) must appear as one contiguous block, blocks
following the DFS preorder.  We call such a tree *layered* for the
order.

Carmeli et al. [27] prove that for acyclic join queries such a tree
exists precisely when the order has no disruptive trio; the tests
check that equivalence empirically on the query catalog.

Join trees of an acyclic hypergraph are the maximum-weight spanning
trees of its intersection graph (edge weight = separator size;
Bernstein–Goodman).  Queries are constant-size, so we enumerate
spanning trees with networkx in decreasing weight, keep the valid join
trees, and test every rooting for layeredness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from repro.hypergraph.jointree import JoinTree

VIRTUAL_ROOT = -1
_MAX_TREES_PER_COMPONENT = 2000


@dataclass
class LayeredTree:
    """A rooted, child-ordered join tree compatible with an order.

    The virtual root ``VIRTUAL_ROOT`` has an empty bag and the real
    roots as children, so forests are handled uniformly.  ``own`` maps
    each node to its own-variable block, in the requested order.
    """

    parent: Dict[int, Optional[int]]
    children: Dict[int, List[int]]
    own: Dict[int, Tuple[str, ...]]
    preorder: List[int]

    @property
    def root(self) -> int:
        return VIRTUAL_ROOT


def candidate_join_trees(
    bags: Dict[int, FrozenSet[str]],
) -> List[JoinTree]:
    """All join trees/forests of an acyclic bag family (small inputs).

    Per connected component of the intersection graph, spanning trees
    are enumerated in decreasing weight; once a valid join tree is
    found, enumeration stops at the first strictly lighter tree (valid
    join trees all have maximum weight).  Components are then combined.
    """
    nodes = sorted(bags)
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    for i in nodes:
        for j in nodes:
            if i < j and bags[i] & bags[j]:
                graph.add_edge(i, j, weight=len(bags[i] & bags[j]))

    component_options: List[List[Dict[int, int]]] = []
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component).copy()
        if sub.number_of_nodes() == 1:
            component_options.append([{}])
            continue
        options: List[Dict[int, int]] = []
        valid_weight: Optional[int] = None
        count = 0
        for tree in nx.SpanningTreeIterator(sub, weight="weight", minimum=False):
            count += 1
            if count > _MAX_TREES_PER_COMPONENT:
                break
            weight = sum(d["weight"] for _, _, d in tree.edges(data=True))
            if valid_weight is not None and weight < valid_weight:
                break
            root = min(tree.nodes)
            parent: Dict[int, int] = {
                child: par for child, par in nx.bfs_predecessors(tree, root)
            }
            candidate = JoinTree(
                bags={n: bags[n] for n in tree.nodes}, parent=parent
            )
            try:
                candidate.validate()
            except ValueError:
                continue
            valid_weight = weight
            options.append(parent)
        if not options:
            return []
        component_options.append(options)

    results: List[JoinTree] = []

    def build(index: int, merged: Dict[int, int]) -> None:
        if index == len(component_options):
            results.append(JoinTree(bags=dict(bags), parent=dict(merged)))
            return
        for option in component_options[index]:
            merged.update(option)
            build(index + 1, merged)
            for key in option:
                del merged[key]

    build(0, {})
    return results


def _try_layout(
    bags: Dict[int, FrozenSet[str]],
    parent: Dict[int, Optional[int]],
    variable_order: Sequence[str],
) -> Optional[LayeredTree]:
    """Lay a rooted forest out along ``variable_order``.

    Simulates a DFS: nodes open when their first own variable arrives
    (implicitly opening empty-block ancestors), blocks must run
    contiguously and in order, and a node's parent must still be on
    the active DFS path when the node opens.  Returns None on any
    violation.
    """
    position = {v: i for i, v in enumerate(variable_order)}
    own: Dict[int, List[str]] = {}
    owner: Dict[str, int] = {}
    for node, bag in bags.items():
        par = parent[node]
        sep = bag & bags[par] if par is not None else frozenset()
        block = sorted(bag - sep, key=position.get)
        own[node] = block
        for v in block:
            owner[v] = node

    full_parent: Dict[int, Optional[int]] = dict(parent)
    for node, par in list(full_parent.items()):
        if par is None:
            full_parent[node] = VIRTUAL_ROOT
    full_parent[VIRTUAL_ROOT] = None
    own[VIRTUAL_ROOT] = []

    opened = {VIRTUAL_ROOT}
    active: List[int] = [VIRTUAL_ROOT]
    preorder: List[int] = [VIRTUAL_ROOT]
    children: Dict[int, List[int]] = {n: [] for n in bags}
    children[VIRTUAL_ROOT] = []
    progress: Dict[int, int] = {n: 0 for n in bags}
    current: Optional[int] = None

    def open_node(node: int) -> None:
        opened.add(node)
        active.append(node)
        preorder.append(node)
        children[full_parent[node]].append(node)

    for v in variable_order:
        node = owner[v]
        if node == current:
            if own[node][progress[node]] != v:
                return None
            progress[node] += 1
            continue
        if node in opened:
            return None  # revisiting a block that was already left
        # Chain of unopened ancestors up to the nearest opened one.
        chain: List[int] = []
        walk: Optional[int] = node
        while walk is not None and walk not in opened:
            chain.append(walk)
            walk = full_parent[walk]
        anchor = walk  # first opened ancestor (at least VIRTUAL_ROOT)
        for ancestor in chain[1:]:
            if own[ancestor]:
                return None  # its block should have come first
        if anchor not in active:
            return None  # anchor's subtree was already exited
        while active[-1] != anchor:
            active.pop()
        for member in reversed(chain):
            open_node(member)
        current = node
        if own[node][0] != v:
            return None
        progress[node] = 1

    for node, block in own.items():
        if node != VIRTUAL_ROOT and progress.get(node, 0) != len(block):
            return None  # pragma: no cover - defensive
    # Attach leftover empty-block nodes (pure filters); their position
    # among siblings does not affect the answer order.
    remaining = [n for n in sorted(bags) if n not in opened]
    while remaining:
        stalled = True
        for node in list(remaining):
            if full_parent[node] in opened:
                opened.add(node)
                preorder.append(node)
                children[full_parent[node]].append(node)
                remaining.remove(node)
                stalled = False
        if stalled:  # pragma: no cover - defensive
            return None
    return LayeredTree(
        parent=full_parent,
        children=children,
        own={n: tuple(b) for n, b in own.items()},
        preorder=preorder,
    )


def _rootings(tree: JoinTree) -> List[Dict[int, Optional[int]]]:
    """All rooted orientations of a join forest (one root per tree)."""
    adjacency: Dict[int, List[int]] = {n: [] for n in tree.bags}
    for child, par in tree.parent.items():
        adjacency[child].append(par)
        adjacency[par].append(child)
    seen: set = set()
    components: List[List[int]] = []
    for start in sorted(tree.bags):
        if start in seen:
            continue
        stack = [start]
        component: List[int] = []
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            component.append(node)
            stack.extend(adjacency[node])
        components.append(sorted(component))

    per_component: List[List[Dict[int, Optional[int]]]] = []
    for component in components:
        options: List[Dict[int, Optional[int]]] = []
        for root in component:
            parent: Dict[int, Optional[int]] = {root: None}
            stack = [root]
            visited = {root}
            while stack:
                node = stack.pop()
                for nbr in adjacency[node]:
                    if nbr not in visited:
                        visited.add(nbr)
                        parent[nbr] = node
                        stack.append(nbr)
            options.append(parent)
        per_component.append(options)

    results: List[Dict[int, Optional[int]]] = []

    def build(index: int, merged: Dict[int, Optional[int]]) -> None:
        if index == len(per_component):
            results.append(dict(merged))
            return
        for option in per_component[index]:
            merged.update(option)
            build(index + 1, merged)

    build(0, {})
    return results


def find_layered_tree(
    bags: Dict[int, FrozenSet[str]],
    variable_order: Sequence[str],
) -> Optional[LayeredTree]:
    """A layered join tree for the order, or None when none exists.

    Tries every (maximum-weight, valid) join tree and every rooting;
    exponential in the constant query size only.
    """
    order = list(variable_order)
    all_vars = set()
    for bag in bags.values():
        all_vars |= bag
    if set(order) != all_vars or len(order) != len(set(order)):
        raise ValueError(
            "variable order must be a permutation of the bag variables"
        )
    for tree in candidate_join_trees(bags):
        for rooting in _rootings(tree):
            layered = _try_layout(dict(bags), rooting, order)
            if layered is not None:
                return layered
    return None
