"""Free-connexness, disruptive trios, Brault-Baron witnesses, star size.

These are the structural predicates every dichotomy dispatches on, so
the expectations here are transcribed directly from the paper's
examples.
"""

import pytest
from hypothesis import given

from repro.hypergraph.freeconnex import (
    free_connex_join_tree,
    head_path_violation,
    is_free_connex,
    is_free_connex_hypergraph,
)
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.starsize import quantified_star_size
from repro.hypergraph.structure import (
    find_hard_substructure,
    induced_is_cycle,
    induced_is_near_hyperclique,
)
from repro.hypergraph.trios import (
    find_disruptive_trio,
    has_disruptive_trio,
    trio_free_order,
)
from repro.query import catalog, parse_query

from tests.strategies import conjunctive_queries


# ---------------------------------------------------------------------
# free-connex
# ---------------------------------------------------------------------

def test_star_queries_not_free_connex_for_k_ge_2():
    for k in (2, 3, 4):
        assert not is_free_connex(catalog.star_query(k))
        assert not is_free_connex(catalog.star_query_sjf(k))


def test_join_and_boolean_acyclic_queries_are_free_connex():
    assert is_free_connex(catalog.path_query(3))
    assert is_free_connex(catalog.path_query(3, boolean=True))
    assert is_free_connex(catalog.star_query_full(3))


def test_cyclic_queries_never_free_connex():
    assert not is_free_connex(catalog.triangle_query(boolean=False))
    assert not is_free_connex(catalog.cycle_query(4))


def test_path_interior_projection():
    fc, nfc = catalog.free_connex_pair()
    assert is_free_connex(fc)
    assert not is_free_connex(nfc)


def test_deeper_free_connex_example():
    q = parse_query("q(x, y) :- R(x, y, a), S(a, b), T(b)")
    assert is_free_connex(q)
    q2 = parse_query("q(x, w) :- R(x, y), S(y, w)")
    assert not is_free_connex(q2)


def test_head_endpoints_of_long_path_not_free_connex():
    q = catalog.path_query(3).with_head(("v1", "v4"))
    assert not is_free_connex(q)


def test_free_connex_hypergraph_requires_body_acyclicity():
    # Triangle body with full head: H ∪ {S} has the covering edge and
    # is acyclic, but H itself is not — so not free-connex *acyclic*.
    h = Hypergraph(
        "xyz", [frozenset("xy"), frozenset("yz"), frozenset("zx")]
    )
    assert not is_free_connex_hypergraph(h, "xyz")


def test_free_connex_join_tree_roots_at_s_node():
    q = catalog.star_query_full(3)
    tree, s_node = free_connex_join_tree(q)
    tree.validate()
    assert tree.bags[s_node] == q.free_variables
    assert tree.roots == [s_node]


def test_free_connex_join_tree_boolean_query():
    q = catalog.path_query(2, boolean=True)
    tree, s_node = free_connex_join_tree(q)
    tree.validate()
    assert tree.bags[s_node] == frozenset()


def test_free_connex_join_tree_rejects_non_fc():
    with pytest.raises(ValueError):
        free_connex_join_tree(catalog.star_query(2))


def test_head_path_violation_finds_bridge():
    _, nfc = catalog.free_connex_pair()
    witness = head_path_violation(nfc)
    assert witness is not None
    x, z, path = witness
    assert {x, z} == {"x", "z"}
    assert path == ("y",)


def test_head_path_violation_none_for_free_connex():
    fc, _ = catalog.free_connex_pair()
    assert head_path_violation(fc) is None


@given(conjunctive_queries(max_atoms=3, max_arity=3))
def test_free_connex_implies_acyclic(query):
    if is_free_connex(query):
        assert is_acyclic(query.hypergraph())


# ---------------------------------------------------------------------
# disruptive trios
# ---------------------------------------------------------------------

def test_star_full_trio_orders():
    q = catalog.star_query_full(2, self_join_free=True)
    assert find_disruptive_trio(q, ("x1", "x2", "z")) == ("x1", "x2", "z")
    assert find_disruptive_trio(q, ("x1", "z", "x2")) is None
    assert find_disruptive_trio(q, ("z", "x1", "x2")) is None


def test_trio_requires_valid_order():
    q = catalog.path_query(2)
    with pytest.raises(ValueError):
        find_disruptive_trio(q, ("v1", "v2"))
    with pytest.raises(ValueError):
        find_disruptive_trio(q, ("v1", "v1", "v2"))


def test_path_query_trio_pattern():
    q = catalog.path_query(2)
    assert not has_disruptive_trio(q, ("v1", "v2", "v3"))
    assert has_disruptive_trio(q, ("v1", "v3", "v2"))


def test_trio_free_order_exists_for_acyclic_join_queries():
    for query in (
        catalog.path_query(3),
        catalog.star_query_full(3),
        catalog.semijoin_reducible_query(),
    ):
        order = trio_free_order(query)
        assert order is not None
        assert not has_disruptive_trio(query, order)


def test_clique_query_any_order_trio_free():
    # All variables pairwise share an atom: no trio can exist.
    q = catalog.clique_query(3)
    assert trio_free_order(q) is not None


# ---------------------------------------------------------------------
# Brault-Baron witnesses (Theorem 3.6)
# ---------------------------------------------------------------------

def test_triangle_witness_is_cycle():
    witness = find_hard_substructure(catalog.triangle_query().hypergraph())
    assert witness.kind == "cycle"
    assert set(witness.cycle_order) == {"x", "y", "z"}


def test_long_cycle_witness():
    witness = find_hard_substructure(catalog.cycle_query(5).hypergraph())
    assert witness.kind == "cycle"
    assert len(witness.vertices) == 5


def test_loomis_whitney_witness_is_hyperclique():
    for k in (4, 5):
        witness = find_hard_substructure(
            catalog.loomis_whitney_query(k).hypergraph()
        )
        assert witness.kind == "hyperclique"
        assert len(witness.vertices) == k
        assert witness.uniformity == k - 1


def test_acyclic_has_no_witness():
    assert find_hard_substructure(catalog.path_query(4).hypergraph()) is None


def test_witness_in_padded_cyclic_query():
    q = parse_query("q() :- R(a, x), S(x, y), T(y, z), U(z, x)")
    witness = find_hard_substructure(q.hypergraph())
    assert witness.kind == "cycle"
    assert witness.vertices == frozenset({"x", "y", "z"})


def test_induced_is_cycle_helpers():
    h = catalog.cycle_query(4).hypergraph()
    assert induced_is_cycle(h, frozenset({"v1", "v2", "v3", "v4"}))
    assert induced_is_cycle(h, frozenset({"v1", "v2", "v3"})) is None
    lw = catalog.loomis_whitney_query(4).hypergraph()
    assert induced_is_near_hyperclique(lw, lw.vertices)
    assert not induced_is_near_hyperclique(
        h, frozenset({"v1", "v2", "v3"})
    )


def test_uniformity_property_on_cycle_witness():
    witness = find_hard_substructure(catalog.triangle_query().hypergraph())
    with pytest.raises(ValueError):
        witness.uniformity


# ---------------------------------------------------------------------
# quantified star size (Theorem 4.6)
# ---------------------------------------------------------------------

def test_star_query_star_size_is_k():
    for k in (1, 2, 3, 4):
        assert quantified_star_size(catalog.star_query(k)) == k
        assert quantified_star_size(catalog.star_query_sjf(k)) == k


def test_boolean_star_size_zero():
    assert quantified_star_size(catalog.path_query(3, boolean=True)) == 0


def test_join_query_star_size_one():
    assert quantified_star_size(catalog.path_query(3)) == 1


def test_free_connex_star_size_at_most_one():
    fc, _ = catalog.free_connex_pair()
    assert quantified_star_size(fc) <= 1


def test_non_free_connex_path_projection_star_size():
    _, nfc = catalog.free_connex_pair()
    assert quantified_star_size(nfc) == 2


@given(conjunctive_queries(max_atoms=3, max_arity=3))
def test_star_size_bounded_by_free_variables(query):
    assert quantified_star_size(query) <= max(len(query.head), 0) or (
        quantified_star_size(query) <= 1
    )
