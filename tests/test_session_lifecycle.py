"""Deterministic resource release: ``Session.close`` and friends.

The serving layer creates and destroys sessions continuously (tenant
eviction), so teardown can no longer lean on the garbage collector.
Pinned here:

- ``close()`` is idempotent, works as a context manager, and flips
  the session into a guarded state where ``prepare``/``add`` raise;
- closing a durable session flushes and closes the WAL so the
  directory reattaches cleanly (and the OS file handle is gone);
- closing a spilling session promotes spilled shards back to RAM and
  deletes every spill file (and the owned tempdir);
- closed sessions still serve *existing* answer sets read-only — the
  close contract releases resources, it does not poison references;
- ``FollowerSession.close`` delegates to the underlying session;
- ``close_shared_pools`` shuts the process-shared executors down and
  they self-heal on next use.
"""

import os

import pytest

from repro.db.executor import close_shared_pools, executor_for
from repro.engine import connect
from repro.engine.replication import FollowerSession, LeaderFeed


def test_close_is_idempotent_and_guards_mutation():
    session = connect({"R": [(1, 2), (3, 4)]})
    prepared = session.prepare("q(x, y) :- R(x, y)")
    answers = prepared.run()
    assert answers.count() == 2

    session.close()
    session.close()  # idempotent
    assert session.closed

    with pytest.raises(RuntimeError, match="closed"):
        session.prepare("p(x) :- R(x, y)")
    with pytest.raises(RuntimeError, match="closed"):
        session.add("R", (9, 9))
    with pytest.raises(RuntimeError, match="closed"):
        session.add_all("R", [(9, 9)])

    # Existing references stay readable: close releases resources,
    # it does not poison the in-memory relations.
    assert answers.count() == 2


def test_context_manager_closes():
    with connect({"R": [(1, 2)]}) as session:
        assert session.prepare("q(x) :- R(x, y)").count() == 1
    assert session.closed


def test_durable_close_releases_wal_and_reattaches(tmp_path):
    path = str(tmp_path / "db")
    session = connect(path=path)
    session.add("R", (1, 2))
    session.add("R", (3, 4))
    session.close()

    # A clean reattach recovers everything the WAL held.
    again = connect(path=path)
    assert sorted(map(tuple, again.db["R"])) == [(1, 2), (3, 4)]
    again.add("R", (5, 6))
    again.close()

    final = connect(path=path)
    assert len(final.db["R"]) == 3
    final.close()


def test_close_cleans_spill_files(tmp_path):
    spill_dir = str(tmp_path / "spill")
    session = connect(
        backend="sharded",
        shard_count=4,
        spill_dir=spill_dir,
        max_resident_shards=1,
    )
    session.add_all("R", [(i, i % 11) for i in range(2000)])
    # Queries force shard materialization; the 1-resident budget
    # pushes cold shards to disk.
    prepared = session.prepare("q(x, y) :- R(x, y)")
    total = prepared.count()
    assert total == len({(i, i % 11) for i in range(2000)})
    spilled_before = [
        name
        for name in os.listdir(spill_dir)
        if name.endswith(".npy")
    ]

    session.close()
    leftovers = (
        [n for n in os.listdir(spill_dir) if n.endswith(".npy")]
        if os.path.isdir(spill_dir)
        else []
    )
    assert leftovers == []
    # Shards were promoted back to RAM on close: still readable.
    assert prepared.count() == total
    assert session.db.spill.closed
    # (If nothing spilled the assertion above is vacuous; make the
    # scenario real.)
    assert spilled_before or session.db.spill.spilled_shards() == 0


def test_follower_close_delegates(tmp_path):
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    follower = FollowerSession(LeaderFeed(leader))
    assert follower.session is not None
    follower.close()
    assert follower.session.closed
    leader.close()


def test_follower_context_manager():
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    with FollowerSession(LeaderFeed(leader)) as follower:
        assert len(follower.db["R"]) == 1
    assert follower.session.closed
    leader.close()


def test_shared_pools_close_and_self_heal():
    executor = executor_for(2)
    assert executor.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
    close_shared_pools()
    # The pool is gone but the executor recreates it on demand.
    assert executor._pool is None
    assert executor.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
    close_shared_pools()


def test_mirrors_close_with_the_session():
    session = connect(
        {"R": [(i, i + 1) for i in range(30)]}, backend="python"
    )
    # Forcing a different backend materializes a mirror.
    prepared = session.prepare(
        "q(x, y) :- R(x, y)", backend="columnar"
    )
    assert prepared.count() == 30
    assert session._mirrors
    session.close()
    assert not session._mirrors
