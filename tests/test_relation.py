"""Unit tests for the Relation tuple store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.relation import Relation


def test_add_and_len():
    rel = Relation("R", 2)
    rel.add((1, 2))
    rel.add((2, 3))
    assert len(rel) == 2


def test_duplicates_are_absorbed():
    rel = Relation("R", 2, [(1, 2), (1, 2), (1, 2)])
    assert len(rel) == 1


def test_arity_mismatch_rejected():
    rel = Relation("R", 2)
    with pytest.raises(ValueError):
        rel.add((1, 2, 3))


def test_add_all_arity_mismatch_rejected():
    rel = Relation("R", 2)
    with pytest.raises(ValueError):
        rel.add_all([(1, 2), (3,)])


def test_negative_arity_rejected():
    with pytest.raises(ValueError):
        Relation("R", -1)


def test_zero_arity_relation():
    rel = Relation("Nullary", 0)
    rel.add(())
    assert () in rel
    assert len(rel) == 1


def test_contains_and_iter():
    rows = {(1, 2), (3, 4)}
    rel = Relation("R", 2, rows)
    assert (1, 2) in rel
    assert (9, 9) not in rel
    assert set(rel) == rows


def test_discard():
    rel = Relation("R", 2, [(1, 2), (3, 4)])
    rel.discard((1, 2))
    assert (1, 2) not in rel
    rel.discard((99, 99))  # absent: no error
    assert len(rel) == 1


def test_retain_filters_and_counts():
    rel = Relation("R", 1, [(i,) for i in range(10)])
    removed = rel.retain(lambda t: t[0] % 2 == 0)
    assert removed == 5
    assert set(rel) == {(i,) for i in range(0, 10, 2)}


def test_retain_noop_returns_zero():
    rel = Relation("R", 1, [(1,)])
    assert rel.retain(lambda t: True) == 0


def test_index_lookup():
    rel = Relation("R", 2, [(1, 2), (1, 3), (2, 3)])
    assert sorted(rel.lookup((0,), (1,))) == [(1, 2), (1, 3)]
    assert rel.lookup((0, 1), (2, 3)) == [(2, 3)]
    assert rel.lookup((1,), (99,)) == []


def test_index_out_of_range_column():
    rel = Relation("R", 2, [(1, 2)])
    with pytest.raises(IndexError):
        rel.index((5,))


def test_index_invalidated_on_mutation():
    rel = Relation("R", 2, [(1, 2)])
    assert rel.lookup((0,), (3,)) == []
    rel.add((3, 4))
    assert rel.lookup((0,), (3,)) == [(3, 4)]


def test_project():
    rel = Relation("R", 2, [(1, 2), (1, 3)])
    proj = rel.project((0,))
    assert set(proj) == {(1,)}
    assert proj.arity == 1


def test_project_reorders_and_repeats():
    rel = Relation("R", 2, [(1, 2)])
    assert set(rel.project((1, 0, 1))) == {(2, 1, 2)}


def test_select_eq():
    rel = Relation("R", 2, [(1, 2), (1, 3), (2, 3)])
    assert set(rel.select_eq(0, 1)) == {(1, 2), (1, 3)}


def test_distinct_values_and_active_domain():
    rel = Relation("R", 2, [(1, 2), (3, 2)])
    assert rel.distinct_values(0) == {1, 3}
    assert rel.distinct_values(1) == {2}
    assert rel.active_domain() == {1, 2, 3}


def test_copy_is_independent():
    rel = Relation("R", 1, [(1,)])
    clone = rel.copy()
    clone.add((2,))
    assert len(rel) == 1
    assert len(clone) == 2


def test_equality_ignores_name():
    assert Relation("A", 2, [(1, 2)]) == Relation("B", 2, [(1, 2)])
    assert Relation("A", 2, [(1, 2)]) != Relation("A", 2, [(2, 1)])


def test_relations_unhashable():
    with pytest.raises(TypeError):
        hash(Relation("R", 1))


@given(
    st.sets(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30
    )
)
def test_index_partitions_rows(rows):
    """Property: a column index's buckets partition the tuple set."""
    rel = Relation("R", 2, rows)
    index = rel.index((0,))
    recovered = set()
    for key, bucket in index.items():
        for tup in bucket:
            assert tup[0] == key[0]
            recovered.add(tup)
    assert recovered == set(rows)


@given(
    st.sets(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=25
    )
)
def test_project_is_idempotent(rows):
    rel = Relation("R", 2, rows)
    once = rel.project((0,))
    twice = once.project((0,))
    assert set(once) == set(twice)
