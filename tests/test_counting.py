"""Counting algorithms (Theorems 3.8/3.13) and interpolation."""

import pytest
from hypothesis import assume, given

from repro.counting import (
    count_acyclic_join,
    count_answers,
    count_brute_force,
    count_free_connex,
    count_with_colors,
    star_counts_by_interpolation,
)
from repro.counting.interpolation import default_star_oracle, tag_relations
from repro.db.database import Database
from repro.db.relation import Relation
from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.gyo import is_acyclic
from repro.query import catalog, parse_query
from repro.workloads import random_database, random_star_db

from tests.strategies import queries_with_databases


# ---------------------------------------------------------------------
# acyclic join counting (Theorem 3.8)
# ---------------------------------------------------------------------

@pytest.mark.parametrize(
    "query",
    [
        catalog.path_query(2),
        catalog.path_query(4),
        catalog.star_query_full(3),
        catalog.semijoin_reducible_query(),
    ],
    ids=lambda q: q.name,
)
def test_count_acyclic_join_matches_brute(query):
    db = random_database(query, 60, 6, seed=21)
    assert count_acyclic_join(query, db) == query.count_brute_force(db)


def test_count_acyclic_join_with_self_joins():
    # Theorem 3.8 needs no self-join freeness on the upper-bound side.
    query = catalog.star_query_full(3)  # all atoms share symbol R
    db = random_star_db(3, 50, 7, seed=22)
    assert count_acyclic_join(query, db) == query.count_brute_force(db)


def test_count_acyclic_join_rejects_projection():
    _, nfc = catalog.free_connex_pair()
    db = random_database(nfc, 10, 4, seed=23)
    with pytest.raises(ValueError):
        count_acyclic_join(nfc, db)


def test_count_acyclic_join_empty_result():
    query = catalog.path_query(2)
    db = Database()
    db.add_relation(Relation("R1", 2, [(1, 2)]))
    db.add_relation(Relation("R2", 2))
    assert count_acyclic_join(query, db) == 0


def test_count_disconnected_multiplies():
    query = parse_query("q(x, y) :- R(x), S(y)")
    db = Database.from_dict({"R": [(1,), (2,), (3,)], "S": [(7,), (8,)]})
    assert count_acyclic_join(query, db) == 6


# ---------------------------------------------------------------------
# free-connex counting (Theorem 3.13)
# ---------------------------------------------------------------------

@pytest.mark.parametrize(
    "text",
    [
        "q(x, y, z) :- R(x, y), S(y, z)",
        "q(x, y) :- R(x, y), S(y, z)",
        "q(x) :- R(x, y)",
        "q(x, y) :- R(x, y, a), S(a, b), T(b)",
        "q(x1, x2, z) :- R1(x1, z), R2(x2, z)",
    ],
)
def test_count_free_connex_matches_brute(text):
    query = parse_query(text)
    assert is_free_connex(query)
    for seed in (31, 32):
        db = random_database(query, 50, 6, seed=seed)
        assert count_free_connex(query, db) == query.count_brute_force(db)


def test_count_free_connex_boolean():
    query = catalog.path_query(2, boolean=True)
    db = random_database(query, 30, 5, seed=33)
    assert count_free_connex(query, db) == (1 if query.holds(db) else 0)


def test_count_free_connex_empty_result():
    query = parse_query("q(x) :- R(x, y), S(y)")
    db = Database()
    db.add_relation(Relation("R", 2, [(1, 2)]))
    db.add_relation(Relation("S", 1))
    assert count_free_connex(query, db) == 0


def test_count_free_connex_large_output_without_materializing():
    """A cross product with n^2 answers must still count in O(m)."""
    query = parse_query("q(x, y) :- R(x), S(y)")
    n = 500
    db = Database.from_dict(
        {"R": [(i,) for i in range(n)], "S": [(i,) for i in range(n)]}
    )
    assert count_free_connex(query, db) == n * n


# ---------------------------------------------------------------------
# the dispatching front door
# ---------------------------------------------------------------------

@given(queries_with_databases(max_atoms=3, max_tuples=12))
def test_count_answers_always_correct(query_db):
    query, db = query_db
    assert count_answers(query, db) == query.count_brute_force(db)


@given(
    queries_with_databases(max_atoms=3, max_tuples=10, self_join_free=False)
)
def test_count_answers_with_self_joins(query_db):
    query, db = query_db
    assert count_answers(query, db) == query.count_brute_force(db)


def test_count_answers_method_forcing():
    query = catalog.path_query(2)
    db = random_database(query, 25, 5, seed=34)
    expected = query.count_brute_force(db)
    assert count_answers(query, db, method="acyclic-join") == expected
    assert count_answers(query, db, method="free-connex") == expected
    assert count_answers(query, db, method="brute") == expected
    with pytest.raises(ValueError):
        count_answers(query, db, method="magic")


def test_count_brute_force_boolean():
    query = catalog.triangle_query()
    db = random_database(catalog.triangle_query(boolean=False), 30, 5, seed=35)
    assert count_brute_force(query, db) in (0, 1)


# ---------------------------------------------------------------------
# interpolation (the Theorem 3.8 self-join remark, executable)
# ---------------------------------------------------------------------

def _random_relations(k, m, n, seed):
    import random

    rng = random.Random(seed)
    return [
        {(rng.randrange(n), rng.randrange(n)) for _ in range(m)}
        for _ in range(k)
    ]


@pytest.mark.parametrize("k", [1, 2, 3])
def test_interpolation_counts_sjf_star(k):
    relations = _random_relations(k, 15, 5, seed=40 + k)
    query = catalog.star_query_sjf(k)
    db = Database()
    for i, rel in enumerate(relations):
        db.add_relation(Relation(f"R{i + 1}", 2, rel))
    expected = query.count_brute_force(db)
    assert star_counts_by_interpolation(relations) == expected


def test_interpolation_with_explicit_oracle():
    relations = _random_relations(2, 12, 4, seed=50)
    oracle = default_star_oracle(2)
    query = catalog.star_query_sjf(2)
    db = Database(
        [Relation(f"R{i + 1}", 2, rel) for i, rel in enumerate(relations)]
    )
    assert count_with_colors(relations, oracle) == query.count_brute_force(db)


def test_tagging_preserves_join_column():
    relations = [{(1, 9), (2, 9)}, {(3, 9)}]
    tagged = tag_relations(relations)
    assert tagged[0] == {((0, 1), 9), ((0, 2), 9)}
    assert tagged[1] == {((1, 3), 9)}
    # disjoint first columns
    firsts0 = {t[0] for t in tagged[0]}
    firsts1 = {t[0] for t in tagged[1]}
    assert not (firsts0 & firsts1)


def test_interpolation_rejects_empty_input():
    with pytest.raises(ValueError):
        count_with_colors([], default_star_oracle(1))


def test_count_multi_variable_separator_regression():
    """Regression: message keys must use a canonical column order when
    the join-tree separator has several variables (found by
    hypothesis: R0(a,b) under R1(b,c,a) exchanged (a,b)- vs
    (b,a)-ordered keys)."""
    query = parse_query("q(a, b, c) :- R0(a, b), R1(b, c, a)")
    db = Database()
    db.add_relation(Relation("R0", 2, [(1, 2)]))
    db.add_relation(Relation("R1", 3, [(2, 3, 1)]))
    assert count_acyclic_join(query, db) == 1
    assert count_answers(query, db) == 1
