"""Reference solvers vs independent implementations (networkx etc.)."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.solvers import (
    dominating_set_witness,
    find_triangle_naive,
    has_dominating_set,
    has_hyperclique_brute,
    has_k_clique_brute,
    has_triangle_ayz,
    has_triangle_naive,
    hyperclique_witness,
    k_clique_witness,
    min_weight_k_clique_brute,
    threesum_hashing,
    threesum_quadratic,
    threesum_witness,
    zero_k_clique_brute,
)
from repro.solvers.dominating_set import is_dominating_set
from repro.solvers.hyperclique import normalize_hypergraph
from repro.workloads import (
    planted_clique_graph,
    random_graph,
    random_uniform_hypergraph,
    random_weighted_graph,
    threesum_instance,
    triangle_free_graph,
)
from repro.workloads.graphs import zero_clique_instance


# ---------------------------------------------------------------------
# triangles
# ---------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(5))
def test_triangle_solvers_agree_with_networkx(seed):
    graph = random_graph(20, 40, seed=seed)
    expected = any(nx.triangles(graph).values())
    assert has_triangle_naive(graph) == expected
    assert has_triangle_ayz(graph) == expected
    assert has_triangle_ayz(graph, backend="strassen") == expected
    assert (find_triangle_naive(graph) is not None) == expected


def test_triangle_free_graph_is_triangle_free():
    graph = triangle_free_graph(30, 80, seed=1)
    assert not has_triangle_naive(graph)
    planted = triangle_free_graph(30, 80, seed=1, plant_triangle=True)
    assert has_triangle_naive(planted)


def test_find_triangle_witness_is_valid():
    graph = triangle_free_graph(20, 30, seed=2, plant_triangle=True)
    a, b, c = find_triangle_naive(graph)
    assert graph.has_edge(a, b)
    assert graph.has_edge(b, c)
    assert graph.has_edge(c, a)


def test_triangle_ignores_self_loops():
    graph = nx.Graph()
    graph.add_edges_from([(1, 1), (1, 2)])
    assert not has_triangle_naive(graph)
    assert not has_triangle_ayz(graph)


# ---------------------------------------------------------------------
# cliques
# ---------------------------------------------------------------------

@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_clique_solver_agrees_with_networkx(k):
    graph = random_graph(16, 45, seed=10 + k)
    clique_number = max(
        (len(c) for c in nx.find_cliques(graph)), default=0
    )
    assert has_k_clique_brute(graph, k) == (clique_number >= k)


def test_clique_witness_is_a_clique():
    graph, planted = planted_clique_graph(15, 25, 4, seed=20)
    witness = k_clique_witness(graph, 4)
    assert witness is not None
    for i, u in enumerate(witness):
        for v in witness[i + 1 :]:
            assert graph.has_edge(u, v)


def test_min_weight_clique_matches_manual():
    graph, weights = random_weighted_graph(8, 20, seed=21)
    best = min_weight_k_clique_brute(graph, 3, weights)
    manual = None
    import itertools

    for combo in itertools.combinations(graph.nodes(), 3):
        if all(
            graph.has_edge(a, b)
            for a, b in itertools.combinations(combo, 2)
        ):
            total = sum(
                weights[frozenset((a, b))]
                for a, b in itertools.combinations(combo, 2)
            )
            manual = total if manual is None else min(manual, total)
    assert best == manual


def test_zero_clique_planted_found():
    graph, weights = zero_clique_instance(12, 25, 4, seed=22, plant=True)
    witness = zero_k_clique_brute(graph, 4, weights)
    assert witness is not None
    import itertools

    total = sum(
        weights[frozenset((a, b))]
        for a, b in itertools.combinations(witness, 2)
    )
    assert total == 0


def test_zero_clique_absent_when_unplanted():
    graph, weights = zero_clique_instance(10, 15, 4, seed=23, plant=False)
    witness = zero_k_clique_brute(graph, 4, weights)
    if witness is not None:  # astronomically unlikely, but verify
        import itertools

        total = sum(
            weights[frozenset((a, b))]
            for a, b in itertools.combinations(witness, 2)
        )
        assert total == 0


# ---------------------------------------------------------------------
# hypercliques
# ---------------------------------------------------------------------

def test_hyperclique_complete_hypergraph():
    from itertools import combinations

    edges = [frozenset(c) for c in combinations(range(5), 3)]
    assert has_hyperclique_brute(edges, 3, 5)
    witness = hyperclique_witness(edges, 3, 4)
    assert witness is not None and len(witness) == 4


def test_hyperclique_absent():
    edges = [frozenset({0, 1, 2}), frozenset({2, 3, 4})]
    assert not has_hyperclique_brute(edges, 3, 4)


def test_hyperclique_witness_is_valid():
    from itertools import combinations

    from repro.workloads import plant_hyperclique

    base = random_uniform_hypergraph(9, 3, 25, seed=30)
    edges, chosen = plant_hyperclique(base, 9, 3, 5, seed=31)
    witness = hyperclique_witness(edges, 3, 5)
    assert witness is not None
    for sub in combinations(witness, 3):
        assert frozenset(sub) in set(edges)


def test_hyperclique_validation():
    with pytest.raises(ValueError):
        normalize_hypergraph([{1, 2}], 3)
    with pytest.raises(ValueError):
        hyperclique_witness([{1, 2, 3}], 3, 2)


# ---------------------------------------------------------------------
# dominating sets
# ---------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
def test_dominating_set_agrees_with_bruteforce_networkx(seed):
    graph = random_graph(9, 12, seed=seed)
    # networkx's approximation is an upper bound; compare to manual brute.
    import itertools

    for k in (1, 2, 3):
        expected = any(
            is_dominating_set(graph, combo)
            for size in range(1, k + 1)
            for combo in itertools.combinations(graph.nodes(), size)
        )
        assert has_dominating_set(graph, k) == expected, (seed, k)


def test_dominating_set_witness_dominates():
    graph = random_graph(12, 20, seed=40)
    witness = dominating_set_witness(graph, 4)
    if witness is not None:
        assert is_dominating_set(graph, witness)
        assert len(witness) <= 4


def test_dominating_set_whole_graph():
    graph = nx.empty_graph(4)
    assert has_dominating_set(graph, 4)
    assert not has_dominating_set(graph, 3)


# ---------------------------------------------------------------------
# 3SUM
# ---------------------------------------------------------------------

def test_threesum_known_instance():
    a, b, c = [1, 2], [10, 20], [21, 5]
    assert threesum_hashing(a, b, c)
    assert threesum_quadratic(a, b, c)
    assert threesum_witness(a, b, c) is not None


def test_threesum_negative_instance():
    a, b, c = [1, 2], [10, 20], [100, 200]
    assert not threesum_hashing(a, b, c)
    assert not threesum_quadratic(a, b, c)
    assert threesum_witness(a, b, c) is None


@pytest.mark.parametrize("seed", range(4))
def test_threesum_solvers_agree_on_instances(seed):
    a, b, c = threesum_instance(25, plant=(seed % 2 == 0), seed=seed)
    expected = threesum_hashing(a, b, c)
    assert threesum_quadratic(a, b, c) == expected
    assert (threesum_witness(a, b, c) is not None) == expected


def test_threesum_witness_sums():
    a, b, c = threesum_instance(20, plant=True, seed=50)
    x, y, z = threesum_witness(a, b, c)
    assert x + y == z
    assert x in a and y in b and z in c


@given(
    st.lists(st.integers(-30, 30), min_size=1, max_size=12),
    st.lists(st.integers(-30, 30), min_size=1, max_size=12),
    st.lists(st.integers(-30, 30), min_size=1, max_size=12),
)
def test_threesum_solvers_agree_property(a, b, c):
    brute = any(x + y == z for x in a for y in b for z in c)
    assert threesum_hashing(a, b, c) == brute
    assert threesum_quadratic(a, b, c) == brute
