"""The shipped examples must run end to end (smoke tests).

Each example's ``main`` is imported and executed with stdout captured;
assertions inside the examples double as integration checks.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "dichotomy_atlas",
        "ranked_paging",
        "weighted_aggregation",
        "sharded_ingestion",
        "durable_session",
        "replica_catchup",
        "parallel_aggregation",
        "http_serving",
    ],
)
def test_example_runs(name, capsys):
    run_example(name)
    output = capsys.readouterr().out
    assert output.strip()  # every example prints something


def test_triangle_detection_example(capsys):
    # The slowest example (it runs three detection pipelines twice).
    run_example("triangle_detection")
    output = capsys.readouterr().out
    assert "AYZ" in output
    assert "Proposition 3.3" in output
