"""Join algorithms vs the brute-force reference.

Yannakakis (Theorem 3.1), generic join (worst-case optimal), binary
plans, the AYZ triangle algorithm (Theorem 3.2), and Loomis–Whitney
joins (Example 3.4) must all agree with
``ConjunctiveQuery.evaluate_brute_force`` on arbitrary inputs.
"""

import pytest
from hypothesis import given

from repro.db.database import Database
from repro.db.relation import Relation
from repro.hypergraph.gyo import is_acyclic, join_tree
from repro.joins import (
    generic_join,
    generic_join_boolean,
    left_deep_plan_join,
    loomis_whitney_boolean,
    loomis_whitney_join,
    triangle_boolean_ayz,
    triangle_boolean_naive,
    triangle_join_naive,
    yannakakis_boolean,
    yannakakis_full,
    yannakakis_project,
)
from repro.joins.hashjoin import plan_intermediate_sizes
from repro.joins.semijoin import (
    atom_frames,
    full_reducer_pass,
    is_globally_consistent,
)
from repro.joins.triangle import split_threshold
from repro.query import catalog, parse_query
from repro.workloads import (
    agm_tight_triangle_db,
    random_database,
    random_triangle_db,
)

from tests.strategies import queries_with_databases, random_database_for


# ---------------------------------------------------------------------
# semijoin reducer
# ---------------------------------------------------------------------

def test_full_reducer_reaches_global_consistency():
    query = catalog.path_query(3)
    db = random_database(query, 60, 8, seed=1)
    tree = join_tree(query.hypergraph())
    reduced = full_reducer_pass(
        dict(enumerate(atom_frames(query, db))), tree
    )
    assert is_globally_consistent(reduced, tree)


def test_full_reducer_is_idempotent():
    query = catalog.semijoin_reducible_query()
    db = random_database(query, 50, 6, seed=2)
    tree = join_tree(query.hypergraph())
    frames = dict(enumerate(atom_frames(query, db)))
    once = full_reducer_pass(frames, tree)
    twice = full_reducer_pass(once, tree)
    assert all(once[i].rows == twice[i].rows for i in once)


def test_full_reducer_keeps_only_participating_tuples():
    query = parse_query("q(x, y, z) :- R(x, y), S(y, z)")
    db = Database.from_dict(
        {"R": [(1, 10), (2, 99)], "S": [(10, 5)]}
    )
    tree = join_tree(query.hypergraph())
    reduced = full_reducer_pass(
        dict(enumerate(atom_frames(query, db))), tree
    )
    assert reduced[0].rows == {(1, 10)}
    assert reduced[1].rows == {(10, 5)}


def test_full_reducer_node_mismatch():
    query = catalog.path_query(2)
    db = random_database(query, 5, 3, seed=3)
    tree = join_tree(query.hypergraph())
    with pytest.raises(ValueError):
        full_reducer_pass({0: atom_frames(query, db)[0]}, tree)


# ---------------------------------------------------------------------
# Yannakakis
# ---------------------------------------------------------------------

@pytest.mark.parametrize(
    "query",
    [
        catalog.path_query(2),
        catalog.path_query(3),
        catalog.star_query_full(3),
        catalog.semijoin_reducible_query(),
    ],
    ids=lambda q: q.name,
)
def test_yannakakis_full_matches_brute(query):
    db = random_database(query, 70, 7, seed=11)
    result = yannakakis_full(query, db)
    assert result.to_tuples(query.head) == query.evaluate_brute_force(db)


def test_yannakakis_full_rejects_projections():
    fc, _ = catalog.free_connex_pair()
    projected = fc.with_head(("x",))
    db = random_database(projected, 10, 4, seed=4)
    with pytest.raises(ValueError):
        yannakakis_full(projected, db)


def test_yannakakis_boolean_matches_brute():
    query = catalog.path_query(4, boolean=True)
    for seed in range(5):
        db = random_database(query, 12, 10, seed=seed)
        assert yannakakis_boolean(query, db) == query.holds(db)


def test_yannakakis_boolean_empty_relation():
    query = catalog.path_query(2, boolean=True)
    db = Database()
    db.add_relation(Relation("R1", 2, [(1, 2)]))
    db.add_relation(Relation("R2", 2))
    assert not yannakakis_boolean(query, db)


def test_yannakakis_project_matches_brute():
    query = catalog.path_query(3).with_head(("v1", "v4"))
    db = random_database(query, 60, 6, seed=5)
    got = yannakakis_project(query, db)
    assert got.to_tuples(query.head) == query.evaluate_brute_force(db)


def test_yannakakis_project_boolean_head():
    query = catalog.path_query(2, boolean=True)
    db = random_database(query, 20, 5, seed=6)
    frame = yannakakis_project(query, db)
    assert (len(frame) == 1) == query.holds(db)


def test_yannakakis_disconnected_query():
    query = parse_query("q(x, y) :- R(x), S(y)")
    db = Database.from_dict({"R": [(1,), (2,)], "S": [(7,)]})
    result = yannakakis_full(query, db)
    assert result.to_tuples(query.head) == {(1, 7), (2, 7)}


# ---------------------------------------------------------------------
# generic join
# ---------------------------------------------------------------------

@given(queries_with_databases(max_atoms=3, max_tuples=15))
def test_generic_join_matches_brute_force(query_db):
    query, db = query_db
    assert generic_join(query, db) == query.evaluate_brute_force(db)


@given(queries_with_databases(max_atoms=3, max_tuples=12, self_join_free=False))
def test_generic_join_with_self_joins(query_db):
    query, db = query_db
    assert generic_join(query, db) == query.evaluate_brute_force(db)


def test_generic_join_respects_explicit_order():
    query = catalog.triangle_query(boolean=False)
    db = random_triangle_db(50, 8, seed=7)
    expected = query.evaluate_brute_force(db)
    for order in (("x", "y", "z"), ("z", "y", "x"), ("y", "x", "z")):
        assert generic_join(query, db, order=order) == expected


def test_generic_join_rejects_bad_order():
    query = catalog.triangle_query(boolean=False)
    db = random_triangle_db(5, 4, seed=8)
    with pytest.raises(ValueError):
        generic_join(query, db, order=("x", "y"))


def test_generic_join_limit_short_circuits():
    query = catalog.triangle_query(boolean=False)
    db = agm_tight_triangle_db(100)
    answers = generic_join(query, db, limit=1)
    assert len(answers) == 1
    assert generic_join_boolean(catalog.triangle_query(), db)


# ---------------------------------------------------------------------
# binary plans
# ---------------------------------------------------------------------

def test_left_deep_plan_matches_brute():
    query = catalog.triangle_query(boolean=False)
    db = random_triangle_db(60, 8, seed=9)
    got = left_deep_plan_join(query, db)
    assert got.to_tuples(query.head) == query.evaluate_brute_force(db)


def test_left_deep_plan_explicit_order_and_validation():
    query = catalog.path_query(2)
    db = random_database(query, 20, 5, seed=10)
    got = left_deep_plan_join(query, db, order=(1, 0))
    assert got.to_tuples(query.head) == query.evaluate_brute_force(db)
    with pytest.raises(ValueError):
        left_deep_plan_join(query, db, order=(0, 0))


def test_binary_plan_blowup_on_agm_tight_instance():
    """The motivating gap: binary plans materialize ~m^2 intermediates
    on AGM-tight triangle inputs whose output is only m^{3/2}."""
    db = agm_tight_triangle_db(400)  # side 20, each relation 400 rows
    query = catalog.triangle_query(boolean=False)
    sizes = plan_intermediate_sizes(query, db)
    m = 400
    assert max(sizes) >= m ** 1.5  # the 20^3 = 8000 cube blowup


# ---------------------------------------------------------------------
# triangle algorithms (Theorem 3.2)
# ---------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(6))
def test_triangle_algorithms_agree(seed):
    db = random_triangle_db(40, 6, seed=seed)
    expected = catalog.triangle_query().holds(db)
    assert triangle_boolean_naive(db) == expected
    assert triangle_boolean_ayz(db) == expected
    assert triangle_boolean_ayz(db, backend="naive") == expected
    assert triangle_boolean_ayz(db, backend="strassen") == expected


def test_triangle_ayz_delta_extremes():
    """Δ = 0 forces the all-heavy BMM path; huge Δ forces the
    all-light path; both must stay correct."""
    db = random_triangle_db(50, 7, seed=100)
    expected = catalog.triangle_query().holds(db)
    assert triangle_boolean_ayz(db, delta=0.0) == expected
    assert triangle_boolean_ayz(db, delta=10.0**9) == expected


def test_triangle_join_naive_matches_brute():
    db = random_triangle_db(45, 7, seed=12)
    query = catalog.triangle_query(boolean=False)
    assert triangle_join_naive(db) == query.evaluate_brute_force(db)


def test_triangle_empty_database():
    db = Database()
    for name in ("R1", "R2", "R3"):
        db.add_relation(Relation(name, 2))
    assert not triangle_boolean_ayz(db)
    assert not triangle_boolean_naive(db)


def test_split_threshold_formula():
    # omega = 3: Δ = m^{1/2}; omega = 2: Δ = m^{1/3}.
    assert split_threshold(10000, 3.0) == pytest.approx(100.0)
    assert split_threshold(1000, 2.0) == pytest.approx(10.0)
    assert split_threshold(0, 3.0) == 0.0


def test_agm_tight_triangle_answer_count():
    db = agm_tight_triangle_db(100)  # side 10
    query = catalog.triangle_query(boolean=False)
    assert len(triangle_join_naive(db)) == 1000


# ---------------------------------------------------------------------
# Loomis-Whitney (Example 3.4)
# ---------------------------------------------------------------------

def test_loomis_whitney_matches_brute():
    query = catalog.loomis_whitney_query(4, boolean=False)
    db = random_database_for(query, 90, 6, seed=13)
    assert loomis_whitney_join(db, 4) == query.evaluate_brute_force(db)


def test_loomis_whitney_boolean():
    query = catalog.loomis_whitney_query(4, boolean=False)
    db = random_database_for(query, 40, 5, seed=14)
    assert loomis_whitney_boolean(db, 4) == bool(
        query.evaluate_brute_force(db)
    )


def test_loomis_whitney_exponent_helper():
    from repro.joins.loomis_whitney import loomis_whitney_exponent

    assert loomis_whitney_exponent(3) == pytest.approx(1.5)
    assert loomis_whitney_exponent(5) == pytest.approx(1.25)
    with pytest.raises(ValueError):
        loomis_whitney_exponent(2)
