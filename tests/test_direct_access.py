"""Lexicographic and sum-order direct access, and the testing oracle
(Theorems 3.24/3.26, Lemmas 3.20/3.21)."""

import itertools

import pytest
from hypothesis import assume, given

from repro.db.database import Database
from repro.db.relation import Relation
from repro.direct_access import (
    LexDirectAccess,
    SumOrderDirectAccess,
    TestingOracle,
)
from repro.direct_access.layered import find_layered_tree
from repro.direct_access.sum_order import covering_atom_index, uncovered_pair
from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.trios import has_disruptive_trio
from repro.query import catalog, parse_query
from repro.workloads import random_database

from tests.strategies import queries_with_databases


def sorted_answers(query, db, order):
    answers = query.evaluate_brute_force(db)
    head = tuple(query.head)
    key_positions = [head.index(v) for v in order]
    return sorted(
        answers, key=lambda row: tuple(row[p] for p in key_positions)
    )


# ---------------------------------------------------------------------
# layered trees ↔ disruptive trios (the [27] equivalence)
# ---------------------------------------------------------------------

def bags_of(query):
    return {
        i: frozenset(atom.scope) for i, atom in enumerate(query.atoms)
    }


@pytest.mark.parametrize(
    "query",
    [
        catalog.path_query(2),
        catalog.path_query(3),
        catalog.star_query_full(3, self_join_free=True),
        catalog.semijoin_reducible_query(),
    ],
    ids=lambda q: q.name,
)
def test_layered_tree_exists_iff_no_disruptive_trio(query):
    """The [27] characterization, checked exhaustively per query."""
    for order in itertools.permutations(sorted(query.variables)):
        layered = find_layered_tree(bags_of(query), order)
        trio = has_disruptive_trio(query, order)
        assert (layered is None) == trio, (order, trio)


def test_layered_tree_order_validation():
    query = catalog.path_query(2)
    with pytest.raises(ValueError):
        find_layered_tree(bags_of(query), ("v1", "v2"))


# ---------------------------------------------------------------------
# lexicographic direct access
# ---------------------------------------------------------------------

GOOD_CASES = [
    (catalog.path_query(2), ("v1", "v2", "v3")),
    (catalog.path_query(2), ("v2", "v1", "v3")),
    (catalog.path_query(2), ("v3", "v2", "v1")),
    (catalog.path_query(3), ("v1", "v2", "v3", "v4")),
    (catalog.star_query_full(2, self_join_free=True), ("z", "x1", "x2")),
    (catalog.star_query_full(3), ("z", "x1", "x2", "x3")),
    (catalog.semijoin_reducible_query(), ("y", "x", "z", "w")),
]


@pytest.mark.parametrize(
    "query, order", GOOD_CASES, ids=lambda x: str(x)
)
def test_lex_access_matches_sorted_brute_force(query, order):
    db = random_database(query, 50, 5, seed=91)
    accessor = LexDirectAccess(query, db, order=order)
    assert accessor.mode == "layered"
    expected = sorted_answers(query, db, order)
    assert accessor.materialize() == expected


def test_lex_access_projected_free_connex_query():
    query = parse_query("q(x, y) :- R(x, y, a), S(a, b)")
    db = random_database(query, 60, 5, seed=92)
    accessor = LexDirectAccess(query, db, order=("y", "x"))
    assert accessor.materialize() == sorted_answers(query, db, ("y", "x"))


def test_lex_access_out_of_range_errors():
    query = catalog.path_query(2)
    db = random_database(query, 20, 4, seed=93)
    accessor = LexDirectAccess(query, db)
    with pytest.raises(IndexError):
        accessor.access(len(accessor))
    with pytest.raises(IndexError):
        accessor.access(-1)


def test_lex_access_strict_rejects_trio_order():
    query = catalog.path_query(2)
    db = random_database(query, 20, 4, seed=94)
    with pytest.raises(ValueError):
        LexDirectAccess(query, db, order=("v1", "v3", "v2"))


def test_lex_access_fallback_matches():
    query = catalog.path_query(2)
    db = random_database(query, 40, 5, seed=95)
    accessor = LexDirectAccess(
        query, db, order=("v1", "v3", "v2"), strict=False
    )
    assert accessor.mode == "materialized"
    assert accessor.materialize() == sorted_answers(
        query, db, ("v1", "v3", "v2")
    )


def test_lex_access_empty_result():
    query = parse_query("q(x, y) :- R(x, y), S(y)")
    db = Database()
    db.add_relation(Relation("R", 2, [(1, 2)]))
    db.add_relation(Relation("S", 1))
    accessor = LexDirectAccess(query, db)
    assert len(accessor) == 0
    with pytest.raises(IndexError):
        accessor.access(0)


def test_lex_access_default_order_is_head():
    query = catalog.path_query(2)
    db = random_database(query, 30, 5, seed=96)
    accessor = LexDirectAccess(query, db)
    assert accessor.materialize() == sorted(
        query.evaluate_brute_force(db)
    )


def test_lex_access_order_validation():
    query = catalog.path_query(2)
    db = random_database(query, 5, 4, seed=97)
    with pytest.raises(ValueError):
        LexDirectAccess(query, db, order=("v1", "v2"))
    with pytest.raises(ValueError):
        LexDirectAccess(query.as_boolean(), db)


def test_lex_access_random_probes_match():
    query = catalog.star_query_full(3)
    db = random_database(query, 60, 4, seed=98)
    order = ("z", "x1", "x2", "x3")
    accessor = LexDirectAccess(query, db, order=order)
    expected = sorted_answers(query, db, order)
    assert len(accessor) == len(expected)
    for index in (0, len(expected) // 3, len(expected) - 1):
        assert accessor.access(index) == expected[index]


@given(queries_with_databases(max_atoms=3, max_tuples=10))
def test_lex_access_property(query_db):
    query, db = query_db
    assume(query.head)
    assume(is_free_connex(query))
    order = tuple(sorted(query.head))
    try:
        accessor = LexDirectAccess(query, db, order=order)
    except ValueError:
        assume(False)  # no layered tree for this order
        return
    assert accessor.materialize() == sorted_answers(query, db, order)


# ---------------------------------------------------------------------
# sum-order direct access
# ---------------------------------------------------------------------

def test_covering_atom_detection():
    assert covering_atom_index(parse_query("q(x, y) :- R(x, y)")) == 0
    assert covering_atom_index(catalog.path_query(2)) is None
    assert uncovered_pair(catalog.path_query(2)) == ("v1", "v3")
    assert uncovered_pair(parse_query("q(x, y) :- R(x, y)")) is None


def test_sum_order_single_atom():
    query = parse_query("q(x, y) :- R(x, y)")
    db = random_database(query, 40, 10, seed=99)
    weights = {i: (7 * i) % 13 - 6 for i in range(10)}
    accessor = SumOrderDirectAccess(query, db, weights)
    assert accessor.mode == "covering"
    rows = [accessor.access(i) for i in range(len(accessor))]
    assert set(rows) == query.evaluate_brute_force(db)
    keys = [accessor.answer_weight(r) for r in rows]
    assert keys == sorted(keys)


def test_sum_order_columnar_covering_parity():
    query = parse_query("q(x, y) :- R(x, y), S(x)")
    db = random_database(query, 60, 12, seed=102)
    weights = {i: (5 * i) % 11 - 5.0 for i in range(12)}
    scalar = SumOrderDirectAccess(query, db, weights)
    columnar = SumOrderDirectAccess(
        query, db.to_backend("columnar"), weights
    )
    assert columnar.store_backend == "columnar"
    assert len(scalar) == len(columnar)
    assert [columnar.access(i) for i in range(len(columnar))] == [
        scalar.access(i) for i in range(len(scalar))
    ]
    probe = scalar.answer_weight(scalar.access(0)) if len(scalar) else 0.0
    for target in (probe, probe + 0.5, -100.0):
        assert scalar.has_weight(target, 1e-9) == columnar.has_weight(
            target, 1e-9
        )


def test_sum_order_columnar_mixed_type_columns():
    # Regression: ranks are per column, so mutually incomparable types
    # in *different* columns must not break the columnar path (the
    # scalar tie-break only ever compares values position-wise).
    query = parse_query("q(a, b) :- R(a, b)")
    db = Database.from_dict(
        {"R": [(1, "x"), (2, "y"), (1, "y")]}, backend="columnar"
    )
    weights = {1: 5.0, "x": 1.0}
    columnar = SumOrderDirectAccess(query, db, weights)
    scalar = SumOrderDirectAccess(query, db.to_backend("python"), weights)
    assert [columnar.access(i) for i in range(len(columnar))] == [
        scalar.access(i) for i in range(len(scalar))
    ]


def test_sum_order_covering_atom_with_filter():
    query = parse_query("q(x, y) :- R(x, y), S(x)")
    db = Database.from_dict(
        {"R": [(1, 2), (3, 4)], "S": [(1,)]}
    )
    accessor = SumOrderDirectAccess(query, db, {1: 1.0, 2: 2.0})
    assert len(accessor) == 1
    assert accessor.access(0) == (1, 2)


def test_sum_order_strict_rejects_uncovered():
    query = catalog.path_query(2)
    db = random_database(query, 10, 4, seed=100)
    with pytest.raises(ValueError):
        SumOrderDirectAccess(query, db, {})


def test_sum_order_fallback():
    query = catalog.path_query(2)
    db = random_database(query, 30, 5, seed=101)
    weights = {i: float(i) for i in range(5)}
    accessor = SumOrderDirectAccess(query, db, weights, strict=False)
    assert accessor.mode == "materialized"
    rows = [accessor.access(i) for i in range(len(accessor))]
    assert set(rows) == query.evaluate_brute_force(db)
    keys = [accessor.answer_weight(r) for r in rows]
    assert keys == sorted(keys)


def test_sum_order_has_weight_probes():
    query = parse_query("q(x, y) :- R(x, y)")
    db = Database.from_dict({"R": [(0, 1), (2, 3)]})
    weights = {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}
    accessor = SumOrderDirectAccess(query, db, weights)
    assert accessor.has_weight(1.0)
    assert accessor.has_weight(5.0)
    assert not accessor.has_weight(2.0)
    assert not accessor.has_weight(99.0)


def test_sum_order_rejects_projected_query():
    query = parse_query("q(x) :- R(x, y)")
    db = Database.from_dict({"R": [(1, 2)]})
    with pytest.raises(ValueError):
        SumOrderDirectAccess(query, db, {})


def test_sum_order_index_errors():
    query = parse_query("q(x, y) :- R(x, y)")
    db = Database.from_dict({"R": [(1, 2)]})
    accessor = SumOrderDirectAccess(query, db, {})
    with pytest.raises(IndexError):
        accessor.access(1)


# ---------------------------------------------------------------------
# testing oracle (Lemma 3.20)
# ---------------------------------------------------------------------

def test_testing_oracle_direct_access_mode():
    query = catalog.path_query(2)
    db = random_database(query, 40, 5, seed=102)
    oracle = TestingOracle(query, db)
    assert oracle.mode == "direct-access"
    answers = query.evaluate_brute_force(db)
    for answer in sorted(answers)[:15]:
        assert oracle.test(answer)
    assert not oracle.test((99, 99, 99))
    assert oracle.accesses > 0


def test_testing_oracle_hash_fallback_for_star():
    query = catalog.star_query(2)
    db = random_database(query, 40, 5, seed=103)
    oracle = TestingOracle(query, db)
    assert oracle.mode == "hash"
    answers = query.evaluate_brute_force(db)
    for answer in sorted(answers)[:10]:
        assert oracle.test(answer)
    assert not oracle.test((99, 99))


def test_testing_oracle_forced_modes():
    query = catalog.path_query(2)
    db = random_database(query, 20, 4, seed=104)
    assert TestingOracle(query, db, mode="hash").mode == "hash"
    assert (
        TestingOracle(query, db, mode="direct-access").mode
        == "direct-access"
    )
    with pytest.raises(ValueError):
        TestingOracle(query, db, mode="psychic")
    star = catalog.star_query(2)
    sdb = random_database(star, 10, 4, seed=105)
    with pytest.raises(ValueError):
        TestingOracle(star, sdb, mode="direct-access")


def test_testing_oracle_width_check():
    query = catalog.path_query(2)
    db = random_database(query, 10, 4, seed=106)
    oracle = TestingOracle(query, db)
    with pytest.raises(ValueError):
        oracle.test((1, 2))


def test_testing_oracle_boolean_rejected():
    query = catalog.path_query(2, boolean=True)
    db = random_database(query, 5, 4, seed=107)
    with pytest.raises(ValueError):
        TestingOracle(query, db)
