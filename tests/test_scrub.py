"""Self-healing storage: incremental checkpoints, scrub, repair.

Three promises from the self-healing layer (PR 7), each pinned here
for all three backends:

- **incremental checkpoints** — a checkpoint rewrites only the
  relations (per shard, for sharded relations) whose
  ``mutation_stamp`` advanced; untouched payloads ride along as chain
  pointers, recovery composes the base+delta chain exactly (content
  *and* stamps), and the chain folds back into a full base at the
  configured depth;
- **detect or repair, never silently wrong** — for every corruption
  mode (bit flip, truncation, zero fill) injected into every on-disk
  artifact class (checkpoint payloads, ``meta.json``, the manifest,
  sealed WAL segments, the active WAL), opening either raises a typed
  :class:`CorruptionError` or recovers a consistent *prefix* of the
  operation history; :func:`repro.db.scrub.repair` then restores the
  newest provably-consistent state (quarantining the damage) or — as
  the last rung — reseeds from a live replica feed;
- **degraded opens** — when repair is impossible,
  ``attach(path, degraded=True)`` serves whatever verifies, names the
  rest in ``damaged_relations``, and refuses mutations loudly.
"""

import os

import pytest

from repro.db import (
    CorruptionError,
    CorruptSnapshotError,
    CorruptWalError,
    DegradedDatabaseError,
    TruncatedHistoryError,
    attach,
)
from repro.db import checkpoint as ckpt
from repro.db import scrub
from repro.db.database import DurableDatabase
from repro.engine import connect
from repro.engine.replication import LeaderFeed
from repro.util.faultpoints import CORRUPTION_MODES, corrupt_file

BACKENDS = ("python", "columnar", "sharded")

OPS_BEFORE_CKPT = 30
OPS_TOTAL = 40


def _shard_count(backend):
    return 2 if backend == "sharded" else None


def rows_of(rel):
    return set(map(tuple, rel))


def db_state(db):
    return {rel.name: rows_of(rel) for rel in db}


def db_stamps(db):
    return {rel.name: rel.mutation_stamp for rel in db}


# ----------------------------------------------------------------------
# incremental checkpoints
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_incremental_checkpoint_rewrites_only_touched(tmp_path, backend):
    db = attach(
        str(tmp_path / "db"),
        backend=backend,
        shard_count=_shard_count(backend),
    )
    r = db.ensure_relation("R", 2)
    r.add_all([(i, i) for i in range(10)])
    s = db.ensure_relation("S", 2)
    s.add_all([(i, 0) for i in range(10)])
    db.checkpoint()
    full = db.last_checkpoint
    assert full["full"]
    assert any(f.startswith("ckpt-1/1.") for f in full["files"])  # S

    # touch R only, with values the dictionary already knows — the
    # delta must not rewrite S's payloads (nor the dictionary)
    r.add((3, 7))
    db.checkpoint()
    delta = db.last_checkpoint
    assert not delta["full"]
    payloads = [f for f in delta["files"] if not f.endswith("meta.json")]
    assert payloads  # R was rewritten...
    assert all(f.startswith("ckpt-2/0.") for f in payloads)  # ...only R
    if backend == "sharded":
        # only the one shard that (3, 7) hash-routed to
        shards = {f.split(".")[1] for f in payloads}
        assert len(shards) == 1
    assert delta["bytes_written"] < full["bytes_written"]
    db.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_chain_recovery_is_exact(tmp_path, backend):
    path = str(tmp_path / "db")
    db = attach(path, backend=backend, shard_count=_shard_count(backend))
    db.ensure_relation("R", 2).add_all([(i, i + 1) for i in range(20)])
    db.ensure_relation("S", 1).add_all([(i,) for i in range(5)])
    db.checkpoint()
    db["R"].add((100, 101))
    db.checkpoint()  # delta: R only
    db["S"].discard((0,))
    db.checkpoint()  # delta: S only
    db["R"].add((200, 201))  # post-checkpoint WAL suffix
    expected_state, expected_stamps = db_state(db), db_stamps(db)
    db.close()

    manifest = ckpt.read_manifest(path)
    # python has no dictionary chunk pinning ckpt-1; columnar/sharded
    # keep it alive through the base dictionary (and untouched shards)
    expected_chain = [2, 3] if backend == "python" else [1, 2, 3]
    assert manifest["chain"] == expected_chain
    recovered = attach(path)
    assert db_state(recovered) == expected_state
    assert db_stamps(recovered) == expected_stamps
    assert recovered.verify().ok
    recovered.close()


def test_chain_folds_into_full_base_at_depth(tmp_path):
    db = attach(str(tmp_path / "db"), backend="columnar", chain_depth=2)
    db.ensure_relation("R", 2).add((1, 2))
    db.ensure_relation("S", 2).add((3, 4))
    db.checkpoint()
    db["R"].add((1, 3))
    db.checkpoint()
    assert not db.last_checkpoint["full"]
    assert ckpt.read_manifest(db.path)["chain"] == [1, 2]
    db["R"].add((1, 4))
    db.checkpoint()  # chain would exceed depth 2: folds
    assert db.last_checkpoint["full"]
    assert ckpt.read_manifest(db.path)["chain"] == [3]
    # S's payload was re-materialized into the new base
    assert any(
        f.startswith("ckpt-3/1.") for f in db.last_checkpoint["files"]
    )
    db.close()


def test_full_flag_forces_a_base(tmp_path):
    db = attach(str(tmp_path / "db"), backend="columnar")
    db.ensure_relation("R", 2).add((1, 2))
    db.checkpoint()
    db["R"].add((2, 3))
    db.checkpoint(full=True)
    assert db.last_checkpoint["full"]
    assert ckpt.read_manifest(db.path)["chain"] == [2]
    db.close()


# ----------------------------------------------------------------------
# WAL rotation + retention
# ----------------------------------------------------------------------
def test_explicit_rotation_seals_and_recovers(tmp_path):
    path = str(tmp_path / "db")
    db = attach(path, backend="columnar", sync="always")
    rel = db.ensure_relation("R", 2)
    rel.add_all([(i, i) for i in range(10)])
    first = db.rotate_wal()
    assert first == "wal-0.1.log"
    rel.add_all([(i, i) for i in range(10, 20)])
    db.flush()
    manifest = ckpt.read_manifest(path)
    assert [s["name"] for s in manifest["segments"]] == ["wal-0.log"]
    assert manifest["wal"] == "wal-0.1.log"
    expected = db_state(db)
    stamps = db_stamps(db)
    db.close()
    recovered = attach(path)
    assert db_state(recovered) == expected
    assert db_stamps(recovered) == stamps
    recovered.close()


def test_size_triggered_rotation(tmp_path):
    path = str(tmp_path / "db")
    db = attach(
        path, backend="columnar", sync="always", wal_segment_bytes=512
    )
    rel = db.ensure_relation("R", 2)
    for i in range(200):
        rel.add((i, i + 1))
    db.flush()
    manifest = ckpt.read_manifest(path)
    assert len(manifest["segments"]) >= 2  # it did rotate, repeatedly
    expected, stamps = db_state(db), db_stamps(db)
    db.close()
    recovered = attach(path)
    assert db_state(recovered) == expected
    assert db_stamps(recovered) == stamps
    assert recovered.verify().ok
    recovered.close()


def test_retention_trims_old_epochs_keeps_current(tmp_path):
    path = str(tmp_path / "db")
    db = attach(path, backend="columnar", sync="always", wal_retain=1)
    rel = db.ensure_relation("R", 2)
    for epoch in range(4):
        rel.add((epoch, epoch))
        db.checkpoint()
    manifest = ckpt.read_manifest(path)
    # at most wal_retain sealed segments survive each checkpoint
    assert len(manifest["segments"]) <= 1
    on_disk = {
        name
        for name in os.listdir(path)
        if ckpt.parse_wal_name(name) is not None
    }
    assert on_disk == {manifest["wal"]} | {
        s["name"] for s in manifest["segments"]
    }
    # the retained segment's epoch checkpoint stays on disk for repair
    for seg in manifest["segments"]:
        if seg["epoch"]:
            assert os.path.isdir(
                os.path.join(path, ckpt.snapshot_dirname(seg["epoch"]))
            )
    db.close()


# ----------------------------------------------------------------------
# garbage collection of crash residue
# ----------------------------------------------------------------------
def test_recovery_collects_tmp_orphans_and_stray_wals(tmp_path):
    path = str(tmp_path / "db")
    db = attach(path, backend="columnar")
    db.ensure_relation("R", 2).add((1, 2))
    db.checkpoint()
    db.close()
    # crash residue: a half-written snapshot dir, orphaned manifest
    # and session temp files, and a WAL from an uncommitted epoch
    os.makedirs(os.path.join(path, "ckpt-9.tmp"))
    for orphan in ("MANIFEST.json.tmp", "session.json.tmp", "wal-99.log"):
        with open(os.path.join(path, orphan), "wb") as handle:
            handle.write(b"residue")
    os.makedirs(os.path.join(path, "quarantine"))
    with open(os.path.join(path, "quarantine", "evidence"), "wb") as handle:
        handle.write(b"keep me")

    recovered = attach(path)
    entries = set(os.listdir(path))
    assert "ckpt-9.tmp" not in entries
    assert "MANIFEST.json.tmp" not in entries
    assert "session.json.tmp" not in entries
    assert "wal-99.log" not in entries
    # quarantined evidence is never collected
    assert os.path.exists(os.path.join(path, "quarantine", "evidence"))
    assert rows_of(recovered["R"]) == {(1, 2)}
    recovered.close()


# ----------------------------------------------------------------------
# the detect-or-repair matrix
# ----------------------------------------------------------------------
def _build_scripted(path, backend):
    """OPS_TOTAL single adds with a checkpoint in the middle; the
    prefix states are exactly ``{(i, i) : i < k}``."""
    db = attach(
        path,
        backend=backend,
        sync="always",
        shard_count=_shard_count(backend),
    )
    rel = db.ensure_relation("R", 2)
    for i in range(OPS_BEFORE_CKPT):
        rel.add((i, i))
    db.checkpoint()
    for i in range(OPS_BEFORE_CKPT, OPS_TOTAL):
        rel.add((i, i))
    db.close()


def _assert_prefix(db):
    """The zero-silent-wrong-answers property: recovered content must
    be ``{(i, i) : i < k}`` for some k — an exact history prefix."""
    if "R" not in db:
        return 0
    rows = rows_of(db["R"])
    k = len(rows)
    assert rows == {(i, i) for i in range(k)}, "not a history prefix"
    return k


def _artifacts(path, backend):
    """One representative per on-disk artifact class."""
    manifest = ckpt.read_manifest(path)
    targets = {
        "ckpt-meta": ("ckpt-1/meta.json", None),
        "manifest": (ckpt.MANIFEST, 1),
        "active-wal": (manifest["wal"], None),
        "sealed-segment": (manifest["segments"][0]["name"], None),
    }
    payloads = sorted(
        f
        for f in manifest["files"]
        if f.startswith("ckpt-1/") and not f.endswith("meta.json")
    )
    targets["ckpt-payload"] = (payloads[0], None)
    if backend != "python":
        targets["ckpt-dictionary"] = ("ckpt-1/dictionary.pkl", None)
    return targets


@pytest.mark.parametrize("backend", BACKENDS)
def test_detect_or_repair_matrix(tmp_path, backend):
    """Every corruption mode x artifact class: the open either raises
    a typed error or lands on a history prefix; repair then restores a
    (possibly longer) prefix and a clean verify."""
    case = 0
    for artifact_kind in _artifacts(
        _built(tmp_path, backend, 0), backend
    ):
        for mode in CORRUPTION_MODES:
            case += 1
            path = _built(tmp_path, backend, case)
            relpath, offset = _artifacts(path, backend)[artifact_kind]
            corrupt_file(os.path.join(path, relpath), mode, offset=offset)
            label = f"{backend}/{artifact_kind}/{mode}"

            opened_clean = True
            try:
                db = attach(path)
            except CorruptionError:
                opened_clean = False
                # detection: the scrub must flag the damage too
                assert not scrub.verify(path).ok, label
            else:
                _assert_prefix(db)
                db.close()

            if opened_clean and scrub.verify(path).ok:
                # e.g. a truncation landing exactly on a record
                # boundary — indistinguishable from a crash, already a
                # consistent prefix; nothing to repair
                continue
            summary = DurableDatabase.repair(path)
            assert summary["action"] in ("truncate", "rebuild"), label
            repaired = attach(path)
            k = _assert_prefix(repaired)
            # the checkpointed prefix can never be lost: either the
            # snapshot chain or the full WAL history reaches it
            assert k >= OPS_BEFORE_CKPT or summary["action"] == "rebuild"
            assert repaired.verify().ok, label
            repaired.close()


def _built(tmp_path, backend, case):
    path = str(tmp_path / f"case-{case}")
    if not os.path.exists(path):
        _build_scripted(path, backend)
    return path


@pytest.mark.parametrize("backend", BACKENDS)
def test_snapshot_corruption_detected_and_repaired_from_wal(
    tmp_path, backend
):
    """The candidate-0 rung: the only checkpoint is damaged but the
    origin WAL survives — repair replays the full history, exactly."""
    path = str(tmp_path / "db")
    _build_scripted(path, backend)
    manifest = ckpt.read_manifest(path)
    payload = sorted(
        f for f in manifest["files"] if not f.endswith("meta.json")
    )[0]
    corrupt_file(os.path.join(path, payload), "bitflip")

    report = scrub.verify(path)
    assert not report.ok
    assert {i.kind for i in report.issues} == {"snapshot-corrupt"}
    with pytest.raises(CorruptSnapshotError):
        attach(path)
    summary = DurableDatabase.repair(path)
    assert summary == {
        "action": "rebuild",
        "source": "wal-history",
        "quarantined": [payload],
    }
    assert os.path.exists(os.path.join(path, "quarantine", payload))
    repaired = attach(path)
    assert rows_of(repaired["R"]) == {(i, i) for i in range(OPS_TOTAL)}
    assert repaired.verify().ok
    repaired.close()


def test_midlog_wal_corruption_is_not_a_torn_tail(tmp_path):
    path = str(tmp_path / "db")
    _build_scripted(path, "columnar")
    active = ckpt.read_manifest(path)["wal"]
    wal_path = os.path.join(path, active)
    corrupt_file(wal_path, "zerofill", offset=40, length=12)

    report = scrub.verify(path)
    assert [i.kind for i in report.issues] == ["wal-corrupt"]
    assert not report.torn_tail_only
    with pytest.raises(CorruptWalError) as excinfo:
        attach(path)
    assert isinstance(excinfo.value, TruncatedHistoryError)
    assert excinfo.value.artifact == active
    summary = DurableDatabase.repair(path)
    assert summary["action"] == "rebuild"
    assert summary["source"] == "ckpt-1"
    assert active in summary["quarantined"]
    repaired = attach(path)
    assert _assert_prefix(repaired) >= OPS_BEFORE_CKPT
    repaired.close()


def test_torn_tail_is_truncated_in_place(tmp_path):
    path = str(tmp_path / "db")
    _build_scripted(path, "columnar")
    active = ckpt.read_manifest(path)["wal"]
    # append MAGIC-free garbage: a torn, partially-flushed record
    with open(os.path.join(path, active), "ab") as handle:
        handle.write(b"\x00" * 11)

    report = scrub.verify(path)
    assert report.torn_tail_only
    summary = DurableDatabase.repair(path)
    assert summary == {
        "action": "truncate",
        "source": active,
        "quarantined": [],
    }
    assert scrub.verify(path).ok
    repaired = attach(path)
    assert rows_of(repaired["R"]) == {(i, i) for i in range(OPS_TOTAL)}
    repaired.close()


def test_repair_on_healthy_directory_is_a_noop(tmp_path):
    path = str(tmp_path / "db")
    _build_scripted(path, "columnar")
    before = sorted(os.listdir(path))
    assert DurableDatabase.repair(path) == {
        "action": "none",
        "source": None,
        "quarantined": [],
    }
    assert sorted(os.listdir(path)) == before


def test_corrupt_manifest_is_repairable(tmp_path):
    path = str(tmp_path / "db")
    _build_scripted(path, "columnar")
    corrupt_file(os.path.join(path, ckpt.MANIFEST), "truncate", offset=5)
    report = scrub.verify(path)
    assert [i.kind for i in report.issues] == ["manifest-corrupt"]
    with pytest.raises(CorruptSnapshotError):
        attach(path)
    assert DurableDatabase.repair(path)["action"] == "rebuild"
    repaired = attach(path)
    assert rows_of(repaired["R"]) == {(i, i) for i in range(OPS_TOTAL)}
    repaired.close()


def test_reseed_from_replica_feed_when_nothing_survives(tmp_path):
    path = str(tmp_path / "db")
    _build_scripted(path, "columnar")
    manifest = ckpt.read_manifest(path)
    corrupt_file(os.path.join(path, "ckpt-1/meta.json"), "bitflip")
    for name in list(manifest["files"]) + [manifest["wal"]] + [
        s["name"] for s in manifest["segments"]
    ]:
        full = os.path.join(path, name)
        if os.path.exists(full):
            os.remove(full)

    with pytest.raises(CorruptSnapshotError) as excinfo:
        DurableDatabase.repair(path)
    assert "degraded=True" in str(excinfo.value)

    leader = connect(
        {"R": [(i, i) for i in range(OPS_TOTAL)]}, backend="columnar"
    )
    summary = DurableDatabase.repair(path, feed=LeaderFeed(leader))
    assert summary["action"] == "reseed"
    assert summary["source"] == "feed"
    repaired = attach(path)
    assert rows_of(repaired["R"]) == {(i, i) for i in range(OPS_TOTAL)}
    assert repaired.verify().ok
    repaired.close()


# ----------------------------------------------------------------------
# degraded opens
# ----------------------------------------------------------------------
def test_degraded_open_serves_the_intact_remainder(tmp_path):
    path = str(tmp_path / "db")
    db = attach(path, backend="columnar", sync="always")
    db.ensure_relation("R", 2).add_all([(i, i) for i in range(20)])
    db.ensure_relation("S", 2).add_all([(i, 0) for i in range(20)])
    db.checkpoint()
    db["S"].add((99, 99))
    db.close()
    # damage R's payload only
    target = sorted(
        f
        for f in ckpt.read_manifest(path)["files"]
        if f.startswith("ckpt-1/0.")
    )[0]
    corrupt_file(os.path.join(path, target), "bitflip")

    with pytest.raises(CorruptSnapshotError):
        attach(path)
    deg = attach(path, degraded=True)
    assert deg.degraded
    assert set(deg.damaged_relations) == {"R"}
    assert rows_of(deg["S"]) == {(i, 0) for i in range(20)} | {(99, 99)}
    with pytest.raises(CorruptSnapshotError):
        deg["R"]
    with pytest.raises(DegradedDatabaseError):
        deg["S"].add((1, 1))
    with pytest.raises(DegradedDatabaseError):
        deg.checkpoint()
    deg.close()


def test_degraded_open_modifies_nothing(tmp_path):
    path = str(tmp_path / "db")
    _build_scripted(path, "columnar")
    corrupt_file(os.path.join(path, "ckpt-1/meta.json"), "bitflip")
    before = {
        name: os.path.getsize(os.path.join(path, name))
        for name in os.listdir(path)
    }
    deg = attach(path, degraded=True)
    assert "*" in deg.damaged_relations
    deg.close()
    after = {
        name: os.path.getsize(os.path.join(path, name))
        for name in os.listdir(path)
    }
    assert after == before


def test_degraded_needs_a_manifest(tmp_path):
    with pytest.raises(CorruptSnapshotError):
        attach(str(tmp_path / "fresh"), degraded=True)


# ----------------------------------------------------------------------
# the error taxonomy
# ----------------------------------------------------------------------
def test_error_taxonomy():
    snap = CorruptSnapshotError("ckpt-1/0.c0.npy", "CRC32 mismatch")
    assert isinstance(snap, CorruptionError)
    assert snap.artifact == "ckpt-1/0.c0.npy"
    assert "CRC32 mismatch" in str(snap)
    wal = CorruptWalError("wal-1.log", 128, "mid-log damage")
    assert isinstance(wal, CorruptionError)
    assert isinstance(wal, TruncatedHistoryError)  # sync surface catches it
    assert wal.offset == 128
    assert "wal-1.log" in str(wal)
