"""Concurrent multi-reader access against a live update stream.

The serving layer multiplexes many reader threads over one session
while an ingestion stream mutates it; the session's read/write lock
(:class:`repro.util.locks.ReadWriteLock`) plus the per-prepared build
lock must make that safe *and* consistent.  For each backend, N
reader threads hammer ``page``/``count``/``aggregate`` while the main
thread streams insert-only updates, and every observation is checked
against the monotone contract:

- per-thread counts never decrease (insert-only stream, and a read
  can never observe a half-applied batch);
- every page is sorted, duplicate-free, and a subset of the final
  relation content (no torn rows, no phantoms);
- aggregate (counting) equals the count observed around it, bracketed
  by the counts read before and after;
- after the stream ends and threads join, every reader's final view
  agrees exactly with the oracle.
"""

import threading

import pytest

from repro.engine import connect
from repro.semiring import COUNTING

BACKENDS = ("python", "columnar", "sharded")

ROWS = 300
READERS = 4


def final_rows(n):
    return sorted({(i % 17, i % 13) for i in range(n)})


@pytest.mark.parametrize("backend", BACKENDS)
def test_readers_stay_consistent_during_update_stream(backend):
    kwargs = {"backend": backend}
    if backend == "sharded":
        kwargs["shard_count"] = 4
        kwargs["workers"] = 2
    session = connect(**kwargs)
    prepared = session.prepare(
        "q(x, y) :- E(x, y)", semiring=COUNTING
    )
    answers = prepared.run()
    expected = final_rows(ROWS)

    stop = threading.Event()
    failures = []

    def reader():
        last_count = 0
        try:
            while not stop.is_set():
                before = answers.count()
                assert before >= last_count, (
                    f"count went backwards: {last_count} -> {before}"
                )
                last_count = before

                page = answers.page(0, 50)
                assert page == sorted(set(page)), "page unsorted/dupes"
                assert set(page) <= set(expected), (
                    f"phantom rows: {set(page) - set(expected)}"
                )

                value = answers.aggregate()
                after = answers.count()
                assert before <= value <= after, (
                    f"aggregate {value} outside [{before}, {after}]"
                )
                last_count = max(last_count, after)
        except BaseException as exc:  # surfaced after join
            failures.append(exc)

    threads = [
        threading.Thread(target=reader, daemon=True)
        for _ in range(READERS)
    ]
    for thread in threads:
        thread.start()

    for i in range(ROWS):
        session.add("E", (i % 17, i % 13))
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    if failures:
        raise failures[0]

    assert answers.count() == len(expected)
    assert answers.page(0, len(expected) + 10) == expected
    session.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_bulk_writers_and_readers_interleave(backend):
    """``add_all`` batches (the server's ingestion path) vs readers."""
    kwargs = {"backend": backend}
    if backend == "sharded":
        kwargs["shard_count"] = 4
    session = connect(**kwargs)
    prepared = session.prepare("q(x, y) :- E(x, y)")
    answers = prepared.run()
    expected = final_rows(ROWS)

    stop = threading.Event()
    failures = []

    def reader():
        try:
            while not stop.is_set():
                page = answers.page(0, 1000)
                assert set(page) <= set(expected)
                assert page == sorted(set(page))
        except BaseException as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=reader, daemon=True) for _ in range(2)
    ]
    for thread in threads:
        thread.start()

    batch = []
    for i in range(ROWS):
        batch.append((i % 17, i % 13))
        if len(batch) == 32:
            session.add_all("E", batch)
            batch = []
    if batch:
        session.add_all("E", batch)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    if failures:
        raise failures[0]
    assert answers.page(0, len(expected) + 10) == expected
    session.close()


def test_session_bulk_ops_match_singletons():
    bulk = connect(backend="columnar")
    single = connect(backend="columnar")
    rows = [(i, i % 7) for i in range(50)]
    bulk.add_all("R", rows)
    for row in rows:
        single.add("R", row)
    assert sorted(map(tuple, bulk.db["R"])) == sorted(
        map(tuple, single.db["R"])
    )
    bulk.discard_all("R", rows[:10])
    for row in rows[:10]:
        single.discard("R", row)
    assert sorted(map(tuple, bulk.db["R"])) == sorted(
        map(tuple, single.db["R"])
    )
    bulk.close()
    single.close()
