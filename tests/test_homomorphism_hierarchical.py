"""Chandra–Merlin machinery and the (q-)hierarchical predicates."""

import pytest
from hypothesis import given

from repro.hypergraph.hierarchical import (
    atom_sets,
    hierarchical_violation,
    is_hierarchical,
    is_q_hierarchical,
    q_hierarchical_violation,
)
from repro.query import catalog, parse_query
from repro.query.homomorphism import (
    are_equivalent,
    core,
    find_homomorphism,
    is_contained_in,
    is_minimal,
)

from tests.strategies import conjunctive_queries, queries_with_databases


# ---------------------------------------------------------------------
# homomorphisms and containment
# ---------------------------------------------------------------------

def test_homomorphism_identity():
    q = parse_query("q(x) :- R(x, y)")
    hom = find_homomorphism(q, q)
    assert hom is not None
    assert hom["x"] == "x"


def test_homomorphism_collapses_path_onto_loop():
    path = parse_query("q() :- R(x, y), R(y, z)")
    loop = parse_query("q() :- R(v, v)")
    assert find_homomorphism(path, loop) == {"x": "v", "y": "v", "z": "v"}
    assert find_homomorphism(loop, path) is None


def test_homomorphism_respects_heads():
    q1 = parse_query("q(x) :- R(x, y)")
    q2 = parse_query("q(y) :- R(x, y)")
    # Mapping must send head to head: x -> y forces R(y, ?) in q2: absent.
    assert find_homomorphism(q1, q2) is None


def test_homomorphism_head_length_mismatch():
    q1 = parse_query("q(x, y) :- R(x, y)")
    q2 = parse_query("q(x) :- R(x, y)")
    assert find_homomorphism(q1, q2) is None


def test_containment_path_lengths():
    """A longer R-path maps into a shorter one's query? No — but every
    graph with a 2-path has a 1-edge, so q_edge ⊇ q_path2."""
    edge = parse_query("q() :- R(x, y)")
    path2 = parse_query("q() :- R(x, y), R(y, z)")
    assert is_contained_in(path2, edge)  # 2-path implies an edge
    assert not is_contained_in(edge, path2)  # an edge alone: no 2-path


def test_containment_triangle_vs_cycle():
    """With a *symmetric* edge relation, a triangle supports closed
    walks of every length ≥ 3, so hom(C5-walk → sym-triangle) exists
    and q_tri ⊆ q_C5walk; with a directed 3-cycle it does not (5 is
    not divisible by 3)."""
    sym_triangle = parse_query(
        "q() :- E(a, b), E(b, a), E(b, c), E(c, b), E(c, a), E(a, c)"
    )
    directed_triangle = parse_query("q() :- E(a, b), E(b, c), E(c, a)")
    c5 = parse_query(
        "q() :- E(v1, v2), E(v2, v3), E(v3, v4), E(v4, v5), E(v5, v1)"
    )
    assert is_contained_in(sym_triangle, c5)
    assert find_homomorphism(c5, directed_triangle) is None


def test_equivalence_up_to_renaming():
    q1 = parse_query("q(x) :- R(x, y), S(y)")
    q2 = parse_query("q(a) :- R(a, b), S(b)")
    assert are_equivalent(q1, q2)


def test_semantic_containment_spot_check():
    """Containment verified against actual evaluation on random DBs."""
    from repro.workloads import random_database

    edge = parse_query("q() :- R(x, y)")
    path2 = parse_query("q() :- R(x, y), R(y, z)")
    for seed in range(5):
        db = random_database(path2, 8, 6, seed=seed)
        if path2.holds(db):
            assert edge.holds(db)


# ---------------------------------------------------------------------
# cores
# ---------------------------------------------------------------------

def test_core_removes_redundant_atom():
    q = parse_query("q() :- R(x, y), R(u, v)")  # second atom redundant
    minimized = core(q)
    assert len(minimized.atoms) == 1
    assert are_equivalent(q, minimized)


def test_core_keeps_triangle():
    tri = parse_query("q() :- E(x, y), E(y, z), E(z, x)")
    assert is_minimal(tri)


def test_core_folds_pendant_path():
    # A triangle with a pendant 2-path folds onto the triangle.
    q = parse_query(
        "q() :- E(x, y), E(y, z), E(z, x), E(x, w), E(w, t)"
    )
    minimized = core(q)
    assert len(minimized.atoms) == 3
    assert are_equivalent(q, minimized)


def test_core_respects_head_variables():
    # The pendant atom carries a head variable: it cannot be dropped.
    q = parse_query("q(w) :- E(x, y), E(y, x), E(x, w)")
    minimized = core(q)
    assert "w" in {
        v for atom in minimized.atoms for v in atom.variables
    }
    assert are_equivalent(q, minimized)


def test_core_of_minimal_query_is_itself():
    q = catalog.star_query_sjf(2)
    assert core(q) == q


@given(conjunctive_queries(max_atoms=3, max_arity=2, self_join_free=False))
def test_core_always_equivalent(query):
    minimized = core(query)
    assert are_equivalent(query, minimized)
    assert len(minimized.atoms) <= len(query.atoms)


# ---------------------------------------------------------------------
# (q-)hierarchical predicates
# ---------------------------------------------------------------------

def test_star_is_hierarchical_not_q_hierarchical():
    q = catalog.star_query_sjf(2)
    assert is_hierarchical(q)
    kind, x, y = q_hierarchical_violation(q)
    assert kind == "projection"
    assert y == "z"


def test_star_full_is_q_hierarchical():
    # With z free the projection obstruction disappears.
    assert is_q_hierarchical(catalog.star_query_full(2, self_join_free=True))


def test_path2_is_hierarchical_path3_is_not():
    # Two edges: at(v2) contains both atoms, endpoints are nested —
    # hierarchical (and q-hierarchical as a join query).  Three edges:
    # at(v2) = {0,1} and at(v3) = {1,2} cross.
    assert is_hierarchical(catalog.path_query(2))
    assert is_q_hierarchical(catalog.path_query(2))
    q = catalog.path_query(3)
    kind, x, y = q_hierarchical_violation(q)
    assert kind == "crossing"
    assert {x, y} == {"v2", "v3"}
    assert not is_hierarchical(q)


def test_single_atom_queries_q_hierarchical():
    assert is_q_hierarchical(parse_query("q(x, y) :- R(x, y)"))
    assert is_q_hierarchical(parse_query("q() :- R(x, y)"))


def test_atom_sets_shape():
    q = catalog.star_query_sjf(2)
    sets = atom_sets(q)
    assert sets["z"] == frozenset({0, 1})
    assert sets["x1"] == frozenset({0})


def test_hierarchical_violation_none_for_stars():
    assert hierarchical_violation(catalog.star_query(3)) is None


@given(conjunctive_queries(max_atoms=3, max_arity=3))
def test_q_hierarchical_implies_hierarchical(query):
    if is_q_hierarchical(query):
        assert is_hierarchical(query)


@given(conjunctive_queries(max_atoms=3, max_arity=3))
def test_hierarchical_implies_acyclic(query):
    from repro.hypergraph.gyo import is_acyclic

    if is_hierarchical(query):
        assert is_acyclic(query.hypergraph())
