"""Unit and property tests for atoms, queries and the brute evaluator."""

import pytest
from hypothesis import given

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery

from tests.strategies import queries_with_databases


def test_atom_scope_deduplicates():
    atom = Atom("R", ("x", "y", "x"))
    assert atom.arity == 3
    assert atom.scope == frozenset({"x", "y"})
    assert atom.has_repeated_variables()


def test_atom_rejects_bad_names():
    with pytest.raises(ValueError):
        Atom("R", ("not a var",))
    with pytest.raises(ValueError):
        Atom("9bad", ("x",))


def test_atom_rename():
    atom = Atom("R", ("x", "y"))
    assert atom.rename({"x": "z"}).variables == ("z", "y")
    assert atom.rename(lambda v: v.upper()).variables == ("X", "Y")


def test_query_safety_enforced():
    with pytest.raises(ValueError):
        ConjunctiveQuery(("z",), (Atom("R", ("x", "y")),))


def test_query_head_distinct():
    with pytest.raises(ValueError):
        ConjunctiveQuery(("x", "x"), (Atom("R", ("x", "y")),))


def test_query_needs_atoms():
    with pytest.raises(ValueError):
        ConjunctiveQuery((), ())


def test_symbol_arity_consistency():
    with pytest.raises(ValueError):
        ConjunctiveQuery(
            (),
            (Atom("R", ("x", "y")), Atom("R", ("x",))),
        )


def test_structure_predicates():
    q = ConjunctiveQuery(
        ("x",), (Atom("R", ("x", "y")), Atom("R", ("y", "z")))
    )
    assert not q.is_boolean()
    assert not q.is_join_query()
    assert not q.is_self_join_free()
    assert q.variables == frozenset({"x", "y", "z"})
    assert q.existential_variables == frozenset({"y", "z"})
    assert q.relation_symbols == ("R",)
    assert q.arity_bound() == 2
    assert len(q.atoms_of("R")) == 2


def test_as_boolean_and_as_join_query():
    q = ConjunctiveQuery(("x",), (Atom("R", ("x", "y")),))
    assert q.as_boolean().is_boolean()
    full = q.as_join_query()
    assert full.is_join_query()
    assert full.head[0] == "x"  # existing head vars first


def test_rename_apart_preserves_answers():
    q = ConjunctiveQuery(
        ("x",), (Atom("R", ("x", "y")), Atom("R", ("y", "x")))
    )
    db = Database.from_dict({"R": [(1, 2), (2, 1), (2, 3)]})
    renamed = q.rename_apart()
    assert renamed.is_self_join_free()
    renamed_db = q.rename_apart_database(db)
    assert q.evaluate_brute_force(db) == renamed.evaluate_brute_force(
        renamed_db
    )


def test_validate_database_errors():
    q = ConjunctiveQuery((), (Atom("R", ("x", "y")),))
    with pytest.raises(KeyError):
        q.validate_database(Database())
    with pytest.raises(ValueError):
        q.validate_database(Database.from_dict({"R": [(1,)]}))


def test_brute_force_simple_join():
    q = ConjunctiveQuery(
        ("x", "z"),
        (Atom("R", ("x", "y")), Atom("S", ("y", "z"))),
    )
    db = Database.from_dict(
        {"R": [(1, 10), (2, 20)], "S": [(10, 100), (20, 200), (10, 101)]}
    )
    assert q.evaluate_brute_force(db) == {(1, 100), (1, 101), (2, 200)}


def test_brute_force_repeated_variable_selection():
    q = ConjunctiveQuery(("x",), (Atom("R", ("x", "x")),))
    db = Database.from_dict({"R": [(1, 1), (1, 2), (3, 3)]})
    assert q.evaluate_brute_force(db) == {(1,), (3,)}


def test_brute_force_boolean_and_holds():
    q = ConjunctiveQuery((), (Atom("R", ("x", "y")),))
    assert q.holds(Database.from_dict({"R": [(1, 2)]}))
    empty = Database()
    empty.add_relation(Relation("R", 2))
    assert not q.holds(empty)


def test_brute_force_self_join_shares_relation():
    q = ConjunctiveQuery(
        ("x", "z"),
        (Atom("E", ("x", "y")), Atom("E", ("y", "z"))),
    )
    db = Database.from_dict({"E": [(1, 2), (2, 3)]})
    assert q.evaluate_brute_force(db) == {(1, 3)}


def test_count_brute_force():
    q = ConjunctiveQuery(("x",), (Atom("R", ("x", "y")),))
    db = Database.from_dict({"R": [(1, 2), (1, 3), (2, 2)]})
    assert q.count_brute_force(db) == 2


def test_query_str_roundtrip_shape():
    q = ConjunctiveQuery(
        ("x",), (Atom("R", ("x", "y")),), name="myq"
    )
    assert str(q) == "myq(x) :- R(x, y)"


def test_query_equality_and_hash():
    a1 = ConjunctiveQuery(("x",), (Atom("R", ("x", "y")),))
    a2 = ConjunctiveQuery(("x",), (Atom("R", ("x", "y")),))
    assert a1 == a2
    assert hash(a1) == hash(a2)
    assert a1 != a1.as_boolean()


@given(queries_with_databases(max_atoms=3, max_tuples=12))
def test_answers_project_from_full_join(query_db):
    """Property: q(D) = π_head(full-join(D)) for every query."""
    query, db = query_db
    full = query.as_join_query()
    positions = [full.head.index(v) for v in query.head]
    projected = {
        tuple(row[p] for p in positions)
        for row in full.evaluate_brute_force(db)
    }
    assert query.evaluate_brute_force(db) == projected


@given(queries_with_databases(max_atoms=3, max_tuples=10))
def test_boolean_agrees_with_answer_existence(query_db):
    query, db = query_db
    assert query.holds(db) == bool(query.evaluate_brute_force(db))
