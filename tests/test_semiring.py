"""Semiring laws and FAQ aggregation (Section 4.1.2 / Theorem 3.8)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query import catalog, parse_query
from repro.semiring import (
    BOOLEAN,
    COUNTING,
    MAX_PLUS,
    MIN_PLUS,
    WeightedDatabase,
    aggregate_acyclic,
    aggregate_generic,
)
from repro.workloads import random_database

SEMIRINGS = [BOOLEAN, COUNTING, MIN_PLUS, MAX_PLUS]
ELEMENTS = {
    "boolean": st.booleans(),
    "counting": st.integers(0, 50),
    "min-plus": st.one_of(st.just(math.inf), st.integers(-20, 20)),
    "max-plus": st.one_of(st.just(-math.inf), st.integers(-20, 20)),
}


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_identities(semiring):
    values = [semiring.one, semiring.zero]
    for value in values:
        assert semiring.plus(value, semiring.zero) == value
        assert semiring.times(value, semiring.one) == value


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_fold_helpers(semiring):
    assert semiring.sum([]) == semiring.zero
    assert semiring.product([]) == semiring.one


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
@given(data=st.data())
def test_semiring_laws(semiring, data):
    elements = ELEMENTS[semiring.name]
    a = data.draw(elements)
    b = data.draw(elements)
    c = data.draw(elements)
    # commutativity
    assert semiring.plus(a, b) == semiring.plus(b, a)
    assert semiring.times(a, b) == semiring.times(b, a)
    # associativity
    assert semiring.plus(semiring.plus(a, b), c) == semiring.plus(
        a, semiring.plus(b, c)
    )
    assert semiring.times(semiring.times(a, b), c) == semiring.times(
        a, semiring.times(b, c)
    )
    # distributivity
    assert semiring.times(a, semiring.plus(b, c)) == semiring.plus(
        semiring.times(a, b), semiring.times(a, c)
    )


def _weighted_instance(query, seed):
    db = random_database(query, 40, 5, seed=seed)
    weighted = WeightedDatabase(db)
    import random

    rng = random.Random(seed + 1)
    for name in query.relation_symbols:
        for row in db[name]:
            weighted.set_weight(name, row, rng.randint(-5, 9))
    return db, weighted


def _brute_min_weight(query, db, weighted):
    best = math.inf
    head = tuple(query.head)
    for answer in query.evaluate_brute_force(db):
        assignment = dict(zip(head, answer))
        total = 0
        for atom in query.atoms:
            row = tuple(assignment[v] for v in atom.variables)
            total += weighted.weight(atom.relation, row, MIN_PLUS)
        best = min(best, total)
    return best


@pytest.mark.parametrize(
    "query",
    [catalog.path_query(2), catalog.path_query(3), catalog.star_query_full(2)],
    ids=lambda q: q.name,
)
def test_tropical_aggregation_acyclic(query):
    db, weighted = _weighted_instance(query, seed=60)
    expected = _brute_min_weight(query, db, weighted)
    got = aggregate_acyclic(
        query, db, MIN_PLUS, weighted.atom_weight_fn(query, MIN_PLUS)
    )
    assert got == expected


def test_tropical_aggregation_cyclic_via_generic():
    query = catalog.cycle_query(4)
    db, weighted = _weighted_instance(query, seed=61)
    expected = _brute_min_weight(query, db, weighted)
    got = aggregate_generic(
        query, db, MIN_PLUS, weighted.atom_weight_fn(query, MIN_PLUS)
    )
    assert got == expected


def test_counting_semiring_counts():
    query = catalog.path_query(3)
    db = random_database(query, 50, 6, seed=62)
    assert aggregate_acyclic(query, db, COUNTING) == query.count_brute_force(db)
    assert aggregate_generic(query, db, COUNTING) == query.count_brute_force(db)


def test_boolean_semiring_decides():
    query = catalog.path_query(2)
    db = random_database(query, 8, 6, seed=63)
    assert aggregate_acyclic(query, db, BOOLEAN) == query.holds(db)


def test_empty_join_aggregates_to_zero():
    query = catalog.path_query(2)
    db = Database()
    db.add_relation(Relation("R1", 2, [(1, 2)]))
    db.add_relation(Relation("R2", 2))
    assert aggregate_acyclic(query, db, COUNTING) == 0
    assert aggregate_acyclic(query, db, MIN_PLUS) == math.inf


def test_aggregate_rejects_projected_queries():
    _, nfc = catalog.free_connex_pair()
    db = random_database(nfc, 5, 4, seed=64)
    with pytest.raises(ValueError):
        aggregate_acyclic(nfc, db, COUNTING)
    with pytest.raises(ValueError):
        aggregate_generic(nfc, db, COUNTING)


def test_weighted_database_validation():
    db = Database.from_dict({"R": [(1, 2)]})
    weighted = WeightedDatabase(db)
    weighted.set_weight("R", (1, 2), 5)
    assert weighted.weight("R", (1, 2), COUNTING) == 5
    assert weighted.weight("R", (9, 9), COUNTING) == 1  # default one
    with pytest.raises(KeyError):
        weighted.set_weight("R", (9, 9), 3)


def test_weight_fn_handles_repeated_variables():
    query = parse_query("q(x, z) :- R(x, x), S(x, z)")
    db = Database.from_dict({"R": [(1, 1), (2, 2)], "S": [(1, 5), (2, 6)]})
    weighted = WeightedDatabase(db)
    weighted.set_weight("R", (1, 1), 10)
    weighted.set_weight("R", (2, 2), 20)
    got = aggregate_acyclic(
        query, db, MIN_PLUS, weighted.atom_weight_fn(query, MIN_PLUS)
    )
    assert got == 10  # the (1,1),(1,5) answer
