"""Utilities: RNG helpers, timing, scaling-exponent fits."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    ScalingFit,
    Stopwatch,
    fit_scaling_exponent,
    geometric_sizes,
    make_rng,
    sample_distinct_pairs,
    time_call,
)
from repro.util.scaling import crossover_point
from repro.util.timing import time_sweep


def test_make_rng_variants():
    assert make_rng(1).random() == make_rng(1).random()
    rng = random.Random(3)
    assert make_rng(rng) is rng
    assert make_rng(None).random() == make_rng(0).random()


def test_sample_distinct_pairs_properties():
    rng = make_rng(1)
    pairs = sample_distinct_pairs(rng, 10, 20, ordered=True)
    assert len(pairs) == len(set(pairs)) == 20
    assert all(a != b for a, b in pairs)
    undirected = sample_distinct_pairs(make_rng(2), 10, 40, ordered=False)
    assert all(a < b for a, b in undirected)


def test_sample_distinct_pairs_dense_request():
    pairs = sample_distinct_pairs(make_rng(3), 5, 10, ordered=False)
    assert len(pairs) == 10  # all C(5,2) pairs


def test_sample_distinct_pairs_errors():
    with pytest.raises(ValueError):
        sample_distinct_pairs(make_rng(0), 1, 1)
    with pytest.raises(ValueError):
        sample_distinct_pairs(make_rng(0), 3, 100)


def test_stopwatch_laps():
    watch = Stopwatch()
    watch.lap()
    watch.lap()
    assert len(watch.laps) == 2
    assert watch.max_lap() >= 0
    assert watch.elapsed() >= 0
    watch.reset()
    assert watch.laps == []


def test_time_call_repeats():
    calls = []
    result = time_call(lambda: calls.append(1) or 7, repeats=3)
    assert result.value == 7
    assert len(calls) == 3
    assert result.per_call <= result.seconds
    with pytest.raises(ValueError):
        time_call(lambda: None, repeats=0)


def test_time_sweep_shape():
    out = time_sweep(lambda n: sum(range(n)), [10, 100])
    assert [s for s, _ in out] == [10, 100]
    assert all(t >= 0 for _, t in out)


def test_fit_recovers_known_exponent():
    points = [(n, 3e-7 * n**1.5) for n in (100, 200, 400, 800, 1600)]
    fit = fit_scaling_exponent(points)
    assert fit.exponent == pytest.approx(1.5, abs=1e-9)
    assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
    assert fit.within(1.5, 0.01)
    assert fit.predict(100) == pytest.approx(3e-7 * 1000, rel=1e-6)


def test_fit_requires_two_distinct_points():
    with pytest.raises(ValueError):
        fit_scaling_exponent([(10, 1.0)])
    with pytest.raises(ValueError):
        fit_scaling_exponent([(10, 1.0), (10, 2.0)])
    with pytest.raises(ValueError):
        fit_scaling_exponent([(10, 0.0), (20, 0.0)])


@given(
    st.floats(min_value=0.5, max_value=3.5),
    st.floats(min_value=-20, max_value=-10),
)
def test_fit_property_exact_power_laws(exponent, log_c):
    points = [
        (n, math.exp(log_c) * n**exponent) for n in (50, 100, 200, 400)
    ]
    fit = fit_scaling_exponent(points)
    assert fit.exponent == pytest.approx(exponent, abs=1e-6)


def test_geometric_sizes():
    assert geometric_sizes(100, 2, 4) == [100, 200, 400, 800]
    # 22.5 rounds to 22 under banker's rounding
    assert geometric_sizes(10, 1.5, 3) == [10, 15, 22]
    assert geometric_sizes(1, 2, 5, cap=8) == [1, 2, 4, 8]
    with pytest.raises(ValueError):
        geometric_sizes(0, 2, 3)
    with pytest.raises(ValueError):
        geometric_sizes(10, 1.0, 3)
    with pytest.raises(ValueError):
        geometric_sizes(10, 2.0, 0)


def test_crossover_point():
    slow = fit_scaling_exponent([(n, 1e-6 * n**2) for n in (10, 100, 1000)])
    fast = fit_scaling_exponent(
        [(n, 1e-3 * n**1) for n in (10, 100, 1000)]
    )
    cross = crossover_point(slow, fast)
    assert cross == pytest.approx(1000.0, rel=1e-6)
    assert math.isinf(crossover_point(slow, slow))
