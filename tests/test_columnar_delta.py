"""Delta segments, mutation stamps and exact delta history.

The columnar store's mutation core (PR 3) replaced the buffered-ops-
then-full-rewrite flush with delta code arrays: a compacted main
segment plus an op log merged on read.  These tests pin down the new
contract (:mod:`repro.db.interface`):

- ``mutation_stamp`` is monotone on both backends;
- ``delta_since`` is *exact* — logically-absorbed ops cancel — and
  raises the typed :class:`~repro.db.interface.TruncatedHistoryError`
  only past a history barrier (compaction, bulk ``add_all``, removing
  ``retain``), carrying both stamps;
- ``retain`` interleaved with buffered ops acts on the merged view;
- and a hypothesis state machine drives arbitrary interleavings of
  ``add``/``add_all``/``discard``/``retain`` against the Python
  backend as oracle, replaying every answerable delta against a
  recorded snapshot.
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.db.columnar import (
    DELTA_COMPACT_MIN,
    ColumnarRelation,
)
from repro.db.interface import StaleStructureError, TruncatedHistoryError
from repro.db.relation import Relation


def decode_rows(relation, codes):
    decode = relation.dictionary.decode
    return {tuple(decode(int(c)) for c in row) for row in codes.tolist()}


# ----------------------------------------------------------------------
# mutation stamps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", [Relation, ColumnarRelation])
def test_mutation_stamp_monotone(cls):
    rel = cls("R", 2)
    seen = [rel.mutation_stamp]
    rel.add((1, 2))
    seen.append(rel.mutation_stamp)
    rel.add_all([(3, 4), (5, 6)])
    seen.append(rel.mutation_stamp)
    rel.discard((3, 4))
    seen.append(rel.mutation_stamp)
    rel.retain(lambda t: t[0] != 5)
    seen.append(rel.mutation_stamp)
    assert seen == sorted(seen)
    assert seen[-1] > seen[0]


def test_python_stamp_only_moves_on_effective_change():
    rel = Relation("R", 1, [(1,), (2,)])
    stamp = rel.mutation_stamp
    rel.add((1,))  # already present
    rel.discard((9,))  # absent
    rel.retain(lambda t: True)  # removes nothing
    assert rel.mutation_stamp == stamp


def test_columnar_noop_retain_keeps_stamp_and_history():
    rel = ColumnarRelation("R", 1, [(i,) for i in range(5)])
    stamp = rel.mutation_stamp
    rel.add((9,))
    after_add = rel.mutation_stamp
    assert after_add > stamp
    assert rel.retain(lambda t: True) == 0
    assert rel.mutation_stamp == after_add
    inserted, deleted = rel.delta_since(stamp)
    assert decode_rows(rel, inserted) == {(9,)}
    assert not len(deleted)


# ----------------------------------------------------------------------
# exact delta history
# ----------------------------------------------------------------------
def test_delta_since_is_net():
    rel = ColumnarRelation("R", 2, [(i, i + 1) for i in range(10)])
    stamp = rel.mutation_stamp
    rel.add((0, 1))  # no-op: already present
    rel.add((50, 51))
    rel.discard((1, 2))
    rel.add((60, 61))
    rel.discard((60, 61))  # cancelling pair
    rel.discard((2, 3))
    rel.add((2, 3))  # delete/re-add cancels too
    inserted, deleted = rel.delta_since(stamp)
    assert decode_rows(rel, inserted) == {(50, 51)}
    assert decode_rows(rel, deleted) == {(1, 2)}


def test_delta_since_trivial_and_out_of_range():
    rel = ColumnarRelation("R", 1, [(1,)])
    now = rel.mutation_stamp
    inserted, deleted = rel.delta_since(now)
    assert not len(inserted) and not len(deleted)
    with pytest.raises(TruncatedHistoryError):
        rel.delta_since(now + 1)


def test_truncated_history_error_is_typed_and_carries_stamps():
    rel = ColumnarRelation("R", 1, [(i,) for i in range(10)])
    stamp = rel.mutation_stamp
    rel.add_all([(100 + i,) for i in range(DELTA_COMPACT_MIN + 1)])  # barrier
    with pytest.raises(TruncatedHistoryError) as excinfo:
        rel.delta_since(stamp)
    err = excinfo.value
    assert isinstance(err, StaleStructureError)  # old handlers still catch
    assert err.relation == "R"
    assert err.requested_stamp == stamp
    assert err.barrier_stamp == rel.mutation_stamp
    assert str(stamp) in str(err) and str(err.barrier_stamp) in str(err)


def test_python_backend_raises_typed_error_on_drift():
    rel = Relation("R", 1, [(1,)])
    stamp = rel.mutation_stamp
    rel.add((2,))
    with pytest.raises(TruncatedHistoryError) as excinfo:
        rel.delta_since(stamp)
    assert excinfo.value.requested_stamp == stamp


def test_compaction_truncates_history_but_not_content():
    rel = ColumnarRelation("R", 1, [(i,) for i in range(100)])
    stamp = rel.mutation_stamp
    for i in range(DELTA_COMPACT_MIN + 5):
        rel.add((1000 + i,))
    with pytest.raises(TruncatedHistoryError):
        rel.delta_since(stamp)  # compacted past the threshold
    assert rel.delta_size <= DELTA_COMPACT_MIN + 5
    assert len(rel) == 100 + DELTA_COMPACT_MIN + 5
    # a fresh stamp is answerable again
    fresh = rel.mutation_stamp
    rel.discard((0,))
    inserted, deleted = rel.delta_since(fresh)
    assert not len(inserted)
    assert decode_rows(rel, deleted) == {(0,)}


def test_explicit_compact_is_content_neutral():
    rel = ColumnarRelation("R", 1, [(1,), (2,)])
    rel.add((3,))
    rel.discard((1,))
    stamp = rel.mutation_stamp
    before = rel.rows()
    rel.compact()
    assert rel.mutation_stamp == stamp  # content unchanged
    assert rel.rows() == before
    assert rel.delta_size == 0


def test_bulk_add_all_is_a_barrier_small_is_not():
    rel = ColumnarRelation("R", 1, [(i,) for i in range(10)])
    stamp = rel.mutation_stamp
    rel.add_all([(100,), (101,)])  # small batch: history preserved
    inserted, _ = rel.delta_since(stamp)
    assert decode_rows(rel, inserted) == {(100,), (101,)}
    rel.add_all([(200 + i,) for i in range(DELTA_COMPACT_MIN + 1)])
    with pytest.raises(TruncatedHistoryError):
        rel.delta_since(stamp)  # bulk rewrite


def test_retain_applies_to_merged_view_and_is_a_barrier():
    rel = ColumnarRelation("R", 1, [(i,) for i in range(6)])
    rel.add((10,))  # pending insert
    rel.discard((0,))  # pending delete
    stamp = rel.mutation_stamp
    removed = rel.retain(lambda t: t[0] % 2 == 0)
    # merged view was {1..5, 10}: odd members 1, 3, 5 are removed.
    assert removed == 3
    assert rel.rows() == {(2,), (4,), (10,)}
    with pytest.raises(TruncatedHistoryError):
        rel.delta_since(stamp)  # history barrier
    # equal stamps still mean "no change"
    inserted, deleted = rel.delta_since(rel.mutation_stamp)
    assert not len(inserted) and not len(deleted)


def test_arity_zero_delta():
    rel = ColumnarRelation("R", 0)
    stamp = rel.mutation_stamp
    rel.add(())
    inserted, deleted = rel.delta_since(stamp)
    assert inserted.shape == (1, 0) and deleted.shape == (0, 0)
    assert len(rel) == 1
    rel.discard(())
    assert len(rel) == 0
    inserted, deleted = rel.delta_since(stamp)
    assert not len(inserted) and not len(deleted)


def test_has_coded_tracks_pending_ops():
    rel = ColumnarRelation("R", 2, [(1, 2)])
    code = rel.dictionary.encode_existing
    assert rel.has_coded((code(1), code(2)))
    rel.discard((1, 2))
    assert not rel.has_coded((code(1), code(2)))
    rel.add((1, 2))
    assert rel.has_coded((code(1), code(2)))


# ----------------------------------------------------------------------
# stateful interleavings vs the Python oracle
# ----------------------------------------------------------------------
rows_st = st.tuples(
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=9),
)


class DeltaSegmentMachine(RuleBasedStateMachine):
    """Arbitrary add/add_all/discard/retain interleavings.

    The Python backend is the oracle for content; recorded
    ``(stamp, rows)`` snapshots are the oracle for ``delta_since``:
    whenever history is still answerable, replaying the net delta on
    the snapshot must reproduce the current rows, the insertions must
    be genuinely new and the deletions genuinely gone.
    """

    def __init__(self):
        super().__init__()
        self.col = ColumnarRelation("R", 2)
        self.py = Relation("R", 2)
        self.snapshots = []

    @initialize(rows=st.lists(rows_st, max_size=30))
    def seed(self, rows):
        self.col.add_all(rows)
        self.py.add_all(rows)
        self.snapshot()

    @rule(row=rows_st)
    def add(self, row):
        self.col.add(row)
        self.py.add(row)

    @rule(rows=st.lists(rows_st, max_size=8))
    def add_all(self, rows):
        self.col.add_all(rows)
        self.py.add_all(rows)

    @rule(row=rows_st)
    def discard(self, row):
        self.col.discard(row)
        self.py.discard(row)

    @rule(modulus=st.integers(min_value=2, max_value=5),
          remainder=st.integers(min_value=0, max_value=4))
    def retain(self, modulus, remainder):
        predicate = lambda t: (t[0] + t[1]) % modulus != remainder  # noqa: E731
        assert self.col.retain(predicate) == self.py.retain(predicate)

    @rule()
    def compact(self):
        self.col.compact()

    @rule()
    def snapshot(self):
        self.snapshots.append(
            (self.col.mutation_stamp, self.col.rows())
        )
        self.snapshots = self.snapshots[-4:]

    @invariant()
    def content_matches_oracle(self):
        assert self.col.rows() == self.py.rows()
        assert len(self.col) == len(self.py)

    @invariant()
    def stamps_monotone(self):
        assert self.col.mutation_stamp >= (
            self.snapshots[-1][0] if self.snapshots else 0
        )

    @invariant()
    def deltas_replay_exactly(self):
        current = self.col.rows()
        for stamp, rows in self.snapshots:
            try:
                delta = self.col.delta_since(stamp)
            except TruncatedHistoryError:
                continue  # history barrier passed; rebuild regime
            inserted = decode_rows(self.col, delta[0])
            deleted = decode_rows(self.col, delta[1])
            assert inserted.isdisjoint(rows)
            assert deleted <= rows
            assert (rows - deleted) | inserted == current


TestDeltaSegmentMachine = DeltaSegmentMachine.TestCase
TestDeltaSegmentMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
