"""Boolean matrix multiplication backends: correctness and agreement."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.matmul import (
    SparseBooleanMatrix,
    bmm_naive,
    bmm_numpy,
    bmm_strassen,
    sparse_bmm,
    sparse_bmm_via_dense,
)
from repro.matmul.dense import get_backend


def brute_reference(a, b):
    n, k = a.shape
    _, p = b.shape
    out = np.zeros((n, p), dtype=bool)
    for i in range(n):
        for j in range(p):
            out[i, j] = any(a[i, t] and b[t, j] for t in range(k))
    return out


def test_known_product():
    a = np.array([[1, 0], [0, 1]], dtype=bool)
    b = np.array([[0, 1], [1, 0]], dtype=bool)
    expected = np.array([[0, 1], [1, 0]], dtype=bool)
    for backend in (bmm_numpy, bmm_naive, bmm_strassen):
        assert (backend(a, b) == expected).all()


def test_rectangular_shapes():
    rng = np.random.default_rng(0)
    a = rng.random((7, 13)) < 0.3
    b = rng.random((13, 5)) < 0.3
    reference = brute_reference(a, b)
    for backend in (bmm_numpy, bmm_naive, bmm_strassen):
        assert (backend(a, b) == reference).all()


def test_incompatible_dimensions():
    a = np.zeros((2, 3), dtype=bool)
    b = np.zeros((4, 2), dtype=bool)
    for backend in (bmm_numpy, bmm_naive, bmm_strassen):
        with pytest.raises(ValueError):
            backend(a, b)


def test_non_2d_rejected():
    with pytest.raises(ValueError):
        bmm_numpy(np.zeros(3, dtype=bool), np.zeros((3, 3), dtype=bool))


def test_integer_inputs_coerced():
    a = np.array([[2, 0], [0, 5]])  # non-binary ints: truthiness
    b = np.array([[1, 0], [0, 1]])
    assert (bmm_numpy(a, b) == np.array([[1, 0], [0, 1]], dtype=bool)).all()


def test_strassen_crosses_recursion_cutoff():
    rng = np.random.default_rng(1)
    size = 130  # > STRASSEN_CUTOFF after padding to 256
    a = rng.random((size, size)) < 0.05
    b = rng.random((size, size)) < 0.05
    assert (bmm_strassen(a, b) == bmm_numpy(a, b)).all()


def test_get_backend():
    assert get_backend("numpy") is bmm_numpy
    with pytest.raises(ValueError):
        get_backend("quantum")


@given(
    arrays(bool, (6, 5), elements=st.booleans()),
    arrays(bool, (5, 4), elements=st.booleans()),
)
def test_backends_agree(a, b):
    reference = bmm_numpy(a, b)
    assert (bmm_naive(a, b) == reference).all()
    assert (bmm_strassen(a, b) == reference).all()


# ---------------------------------------------------------------------
# sparse
# ---------------------------------------------------------------------

def test_sparse_matrix_construction_and_shape():
    m = SparseBooleanMatrix([(0, 1), (2, 3)])
    assert m.shape == (3, 4)
    assert m.nnz == 2


def test_sparse_shape_validation():
    with pytest.raises(ValueError):
        SparseBooleanMatrix([(5, 0)], shape=(2, 2))
    with pytest.raises(ValueError):
        SparseBooleanMatrix([(-1, 0)])


def test_sparse_dense_roundtrip():
    m = SparseBooleanMatrix([(0, 0), (1, 2)], shape=(2, 3))
    assert SparseBooleanMatrix.from_dense(m.to_dense()) == m


def test_sparse_transpose():
    m = SparseBooleanMatrix([(0, 1)], shape=(2, 3))
    t = m.transpose()
    assert t.shape == (3, 2)
    assert (1, 0) in t.entries


def test_sparse_bmm_matches_dense():
    rng = np.random.default_rng(2)
    a = SparseBooleanMatrix.from_dense(rng.random((12, 9)) < 0.2)
    b = SparseBooleanMatrix.from_dense(rng.random((9, 11)) < 0.2)
    expected = SparseBooleanMatrix.from_dense(
        bmm_numpy(a.to_dense(), b.to_dense())
    )
    assert sparse_bmm(a, b) == expected
    assert sparse_bmm_via_dense(a, b) == expected
    assert sparse_bmm_via_dense(a, b, backend="strassen") == expected


def test_sparse_bmm_dimension_check():
    a = SparseBooleanMatrix([(0, 0)], shape=(1, 2))
    b = SparseBooleanMatrix([(0, 0)], shape=(3, 1))
    with pytest.raises(ValueError):
        sparse_bmm(a, b)
    with pytest.raises(ValueError):
        sparse_bmm_via_dense(a, b)


def test_sparse_bmm_empty():
    a = SparseBooleanMatrix([], shape=(3, 3))
    b = SparseBooleanMatrix([(0, 0)], shape=(3, 3))
    assert sparse_bmm(a, b).nnz == 0


@given(
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15),
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15),
)
def test_sparse_agrees_with_dense_property(a_entries, b_entries):
    a = SparseBooleanMatrix(a_entries, shape=(6, 6))
    b = SparseBooleanMatrix(b_entries, shape=(6, 6))
    expected = SparseBooleanMatrix.from_dense(
        bmm_numpy(a.to_dense(), b.to_dense())
    )
    assert sparse_bmm(a, b) == expected


def test_rows_by_column_sorted():
    m = SparseBooleanMatrix([(2, 0), (1, 0), (0, 1)])
    assert m.rows_by_column()[0] == [1, 2]
    assert m.cols_by_row()[0] == [1]
