"""Workload generators: determinism, sizes, planted structure."""

import pytest

from repro.query import catalog
from repro.solvers import has_k_clique_brute, has_triangle_naive
from repro.workloads import (
    agm_tight_triangle_db,
    dominating_set_instance,
    plant_hyperclique,
    planted_clique_graph,
    random_database,
    random_graph,
    random_sparse_boolean_matrix,
    random_star_db,
    random_triangle_db,
    random_uniform_hypergraph,
    random_weighted_graph,
    threesum_instance,
    triangle_free_graph,
)
from repro.workloads.databases import functional_path_db


def test_random_graph_shape_and_determinism():
    g1 = random_graph(30, 50, seed=1)
    g2 = random_graph(30, 50, seed=1)
    g3 = random_graph(30, 50, seed=2)
    assert g1.number_of_nodes() == 30
    assert g1.number_of_edges() == 50
    assert set(g1.edges()) == set(g2.edges())
    assert set(g1.edges()) != set(g3.edges())


def test_triangle_free_graph_bipartite():
    graph = triangle_free_graph(20, 40, seed=3)
    assert not has_triangle_naive(graph)
    assert graph.number_of_edges() == 40


def test_triangle_free_graph_edge_cap():
    with pytest.raises(ValueError):
        triangle_free_graph(4, 100, seed=4)


def test_planted_clique_present():
    graph, clique = planted_clique_graph(20, 30, 5, seed=5)
    assert len(clique) == 5
    assert has_k_clique_brute(graph, 5)


def test_random_weighted_graph_weights_cover_edges():
    graph, weights = random_weighted_graph(10, 20, seed=6)
    for u, v in graph.edges():
        assert frozenset((u, v)) in weights


def test_random_database_relations_and_arity():
    query = catalog.loomis_whitney_query(4)
    db = random_database(query, 30, 5, seed=7)
    assert set(db.names()) == set(query.relation_symbols)
    for atom in query.atoms:
        assert db[atom.relation].arity == atom.arity
        assert len(db[atom.relation]) <= 30


def test_agm_tight_triangle_db_structure():
    db = agm_tight_triangle_db(100)
    assert len(db["R1"]) == 100
    query = catalog.triangle_query(boolean=False)
    # Every combination is an answer: 10^3.
    assert query.count_brute_force(db) == 1000


def test_random_triangle_db_and_star_db():
    db = random_triangle_db(25, 6, seed=8)
    assert set(db.names()) == {"R1", "R2", "R3"}
    star = random_star_db(3, 20, 5, seed=9, self_join_free=True)
    assert set(star.names()) == {"R1", "R2", "R3"}
    star2 = random_star_db(3, 20, 5, seed=9)
    assert set(star2.names()) == {"R"}


def test_functional_path_db_output_linear():
    db = functional_path_db(2, 50, seed=10)
    query = catalog.path_query(2)
    answers = query.evaluate_brute_force(db)
    assert len(answers) <= 50 * 9  # branching at most 3 per hop


def test_hypergraph_generator_uniform():
    edges = random_uniform_hypergraph(10, 3, 30, seed=11)
    assert len(edges) == 30
    assert all(len(e) == 3 for e in edges)
    with pytest.raises(ValueError):
        random_uniform_hypergraph(4, 5, 1, seed=12)
    with pytest.raises(ValueError):
        random_uniform_hypergraph(4, 3, 100, seed=13)


def test_plant_hyperclique_adds_all_subsets():
    from itertools import combinations

    base = random_uniform_hypergraph(8, 3, 10, seed=14)
    edges, chosen = plant_hyperclique(base, 8, 3, 4, seed=15)
    for sub in combinations(chosen, 3):
        assert frozenset(sub) in edges
    assert base <= edges


def test_threesum_instance_range_and_planting():
    a, b, c = threesum_instance(20, plant=True, seed=16)
    bound = 20**4
    assert all(-bound <= v <= bound for v in a + b + c)
    assert any(x + y == z for x in a for y in b for z in c)


def test_dominating_set_instance_planted():
    from repro.solvers import has_dominating_set

    graph = dominating_set_instance(15, 10, 3, seed=17, plant=True)
    assert has_dominating_set(graph, 3)


def test_sparse_matrix_generator():
    m = random_sparse_boolean_matrix(10, 12, 30, seed=18)
    assert m.shape == (10, 12)
    assert m.nnz == 30
    with pytest.raises(ValueError):
        random_sparse_boolean_matrix(2, 2, 10, seed=19)
