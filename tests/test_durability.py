"""Durability: WAL + checkpoint round-trips and injected-crash safety.

The durable substrate (:mod:`repro.db.wal`,
:mod:`repro.db.checkpoint`, :class:`repro.db.database.DurableDatabase`)
promises three things, each pinned here for all three backends:

- **round-trip fidelity** — close/reopen (with or without an
  intervening checkpoint) recovers content *and* per-relation
  ``mutation_stamp`` values bit-identically, so derived structures
  resync through the ordinary ``delta_since`` contract;
- **crash safety** — with ``sync="always"``, a crash injected at
  *every* declared fault point (each WAL write/fsync site, each
  checkpoint write/rename site) recovers to a consistent prefix of
  the operation history: some oracle state, never a torn mix;
- **no-op barrier hygiene** (the churn regression): a ``retain`` that
  removes nothing and a ``compact`` with an empty op log advance no
  stamp, truncate no history, and append no WAL record.
"""

import os

import pytest

from repro.db import Database, attach
from repro.db import checkpoint as _checkpoint  # registers ckpt.* points
from repro.db.wal import read_records

assert _checkpoint.CRASH_POINTS  # the import above is load-bearing
from repro.util import faultpoints
from repro.util.faultpoints import InjectedCrash, known_fault_points

BACKENDS = ("python", "columnar", "sharded")


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    faultpoints.reset()
    yield
    faultpoints.reset()


def rows_of(rel):
    return set(map(tuple, rel))


def db_state(db):
    return {rel.name: rows_of(rel) for rel in db}


def db_stamps(db):
    return {rel.name: rel.mutation_stamp for rel in db}


def scripted_ops():
    """One mutation per entry — the oracle replays them one by one."""
    return [
        lambda db: db.ensure_relation("R", 2).add((1, 2)),
        lambda db: db.ensure_relation("R", 2).add((2, 3)),
        lambda db: db.ensure_relation("S", 2).add_all(
            [(i, i + 1) for i in range(8)]
        ),
        lambda db: db["R"].discard((1, 2)),
        lambda db: db["R"].add(("x", "y")),
        lambda db: db["S"].retain(lambda t: t[0] % 2 == 0),
        # the python backend keeps no segments to fold
        lambda db: getattr(db["S"], "compact", lambda: 0)(),
        lambda db: db.ensure_relation("T", 1).add((42,)),
        lambda db: db["R"].discard(("nope", "nope")),
        lambda db: db["S"].add_all([(100, 101), (102, 103)]),
    ]


def run_script(db, upto=None):
    for op in scripted_ops()[:upto]:
        op(db)


@pytest.mark.parametrize("backend", BACKENDS)
def test_close_reopen_round_trip(tmp_path, backend):
    path = str(tmp_path / "db")
    with attach(path, backend=backend, sync="always") as db:
        run_script(db)
        want_state, want_stamps = db_state(db), db_stamps(db)
    recovered = attach(path)
    assert recovered.backend == backend  # stored backend wins
    assert db_state(recovered) == want_state
    assert db_stamps(recovered) == want_stamps
    recovered.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpoint_plus_wal_suffix_round_trip(tmp_path, backend):
    path = str(tmp_path / "db")
    with attach(path, backend=backend, sync="always") as db:
        run_script(db, upto=6)
        db.checkpoint()
        assert db.checkpoint_index == 1
        run_script(db)  # full script again, post-checkpoint suffix
        want_state, want_stamps = db_state(db), db_stamps(db)
    recovered = attach(path)
    assert recovered.checkpoint_index == 1
    assert db_state(recovered) == want_state
    assert db_stamps(recovered) == want_stamps
    recovered.close()


def test_recovery_truncates_garbage_tail(tmp_path):
    path = str(tmp_path / "db")
    with attach(path, backend="columnar") as db:
        db.ensure_relation("R", 1).add((1,))
        db["R"].add((2,))
        want = db_state(db)
        wal_path = os.path.join(db.path, db._wal_name)
    size = os.path.getsize(wal_path)
    with open(wal_path, "ab") as handle:
        handle.write(b"\xde\xad\xbe\xef garbage tail")
    recovered = attach(path)
    assert db_state(recovered) == want
    # the torn tail was physically truncated before appends resumed
    assert os.path.getsize(wal_path) == size
    recovered.ensure_relation("R", 1).add((3,))
    recovered.close()
    again = attach(path)
    assert rows_of(again["R"]) == {(1,), (2,), (3,)}
    again.close()


def oracle_states(backend):
    """Database state after 0, 1, ..., N scripted ops (in memory)."""
    db = Database(backend=backend)
    states = [db_state(db)]
    for op in scripted_ops():
        op(db)
        states.append(db_state(db))
    return states


def crash_workload(path, backend):
    """The durable run the crash tests interrupt: script + checkpoint."""
    db = None
    try:
        db = attach(path, backend=backend, sync="always")
        ops = scripted_ops()
        for op in ops[:6]:
            op(db)
        db.checkpoint()
        for op in ops[6:]:
            op(db)
        db.checkpoint()
    finally:
        if db is not None:
            try:
                db.close()
            except InjectedCrash:  # pragma: no cover - depends on point
                pass


@pytest.mark.parametrize("point", sorted(known_fault_points()))
@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_at_every_fault_point_recovers_a_prefix(
    tmp_path, backend, point
):
    """Arm each declared fault point; recovery must land on an oracle
    state — a consistent prefix of the op history — never a torn mix,
    and the survivor must accept writes and round-trip again."""
    path = str(tmp_path / "db")
    faultpoints.arm(point, at=1)
    crashed = False
    try:
        crash_workload(path, backend)
    except InjectedCrash as exc:
        crashed = True
        assert exc.point == point
    assert crashed or not faultpoints.hits(point), (
        f"fault point {point} armed but never reached"
    )
    faultpoints.reset()
    recovered = attach(path)

    # A scripted op may create a relation *and* insert into it; a crash
    # between those two WAL records legitimately recovers the relation
    # empty.  Content-wise both sides must still agree, so compare net
    # states (empty relations are schema metadata, not content).
    def net(state):
        return {name: rows for name, rows in state.items() if rows}

    assert net(db_state(recovered)) in [
        net(s) for s in oracle_states(backend)
    ], f"recovery after crash at {point} is not a consistent prefix"
    # the recovered database is live: it takes writes and survives
    # another reopen
    recovered.ensure_relation("R", 2).add(("post", "crash"))
    want = db_state(recovered)
    recovered.close()
    again = attach(path)
    assert db_state(again) == want
    again.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_mid_checkpoint_preserves_previous_manifest(
    tmp_path, backend
):
    path = str(tmp_path / "db")
    with attach(path, backend=backend, sync="always") as db:
        run_script(db)
        want = db_state(db)
        faultpoints.arm("ckpt.manifest.rename", at=1)
        with pytest.raises(InjectedCrash):
            db.checkpoint()
    faultpoints.reset()
    recovered = attach(path)
    assert recovered.checkpoint_index is None  # old manifest survived
    assert db_state(recovered) == want
    recovered.close()


# ----------------------------------------------------------------------
# satellite: no-op retain / empty-log compact must not churn
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_noop_retain_keeps_history_and_writes_nothing(tmp_path, backend):
    path = str(tmp_path / "db")
    db = attach(path, backend=backend, sync="always")
    rel = db.ensure_relation("R", 2)
    rel.add_all([(i, i + 1) for i in range(10)])
    stamp = rel.mutation_stamp
    wal_path = os.path.join(db.path, db._wal_name)
    size_before = os.path.getsize(wal_path)
    assert rel.retain(lambda t: True) == 0
    # no stamp advance, no history truncation, no WAL record
    assert rel.mutation_stamp == stamp
    inserted, deleted = rel.delta_since(stamp)
    assert not len(inserted) and not len(deleted)
    assert os.path.getsize(wal_path) == size_before
    db.close()


@pytest.mark.parametrize("backend", ("columnar", "sharded"))
def test_empty_log_compact_keeps_history_and_writes_nothing(
    tmp_path, backend
):
    path = str(tmp_path / "db")
    db = attach(path, backend=backend, sync="always")
    rel = db.ensure_relation("R", 2)
    rel.add_all([(i, i + 1) for i in range(10)])
    rel.compact()  # effective: folds the bulk load's segments
    stamp = rel.mutation_stamp
    rel.add((99, 100))
    rel.compact()  # effective again: one pending op
    base = rel.mutation_stamp
    wal_path = os.path.join(db.path, db._wal_name)
    size_before = os.path.getsize(wal_path)
    records_before = len(read_records(wal_path)[0])
    rel.compact()  # empty log: must be a true no-op
    assert rel.mutation_stamp == base
    inserted, deleted = rel.delta_since(base)
    assert not len(inserted) and not len(deleted)
    assert os.path.getsize(wal_path) == size_before
    assert len(read_records(wal_path)[0]) == records_before
    db.close()


def test_compact_barrier_is_journaled_and_replayed(tmp_path):
    """An *effective* compact is a history barrier on both sides of a
    recovery: the replayed relation refuses pre-barrier stamps too."""
    from repro.db.interface import TruncatedHistoryError

    path = str(tmp_path / "db")
    with attach(path, backend="columnar", sync="always") as db:
        rel = db.ensure_relation("R", 1)
        rel.add((1,))
        old_stamp = rel.mutation_stamp
        rel.add((2,))
        rel.compact()
        with pytest.raises(TruncatedHistoryError):
            rel.delta_since(old_stamp)
    recovered = attach(path)
    with pytest.raises(TruncatedHistoryError):
        recovered["R"].delta_since(old_stamp)
    recovered.close()


def test_sync_policies_accepted_and_validated(tmp_path):
    for i, sync in enumerate(("always", "batch", "never")):
        db = attach(str(tmp_path / f"db{i}"), sync=sync)
        db.ensure_relation("R", 1).add((1,))
        db.flush()
        db.close()
    with pytest.raises(ValueError):
        attach(str(tmp_path / "bad"), sync="sometimes")


# ----------------------------------------------------------------------
# session layer: durable connect + warm restart
# ----------------------------------------------------------------------
def test_session_checkpoint_persists_prepared_plans(tmp_path):
    from repro.engine import connect
    from repro.engine.session import SESSION_FILE

    path = str(tmp_path / "db")
    session = connect(path=path, backend="columnar")
    for i in range(30):
        session.add("R", (i, i + 1))
        session.add("S", (i + 1, i % 5))
    prepared = session.prepare("q(x, y) :- R(x, z), S(z, y)")
    want = len(prepared.run())
    session.checkpoint()
    assert os.path.exists(os.path.join(path, SESSION_FILE))
    session.add("R", (500, 501))  # WAL suffix past the checkpoint
    session.db.close()

    warm = connect(path=path)
    # the plan cache is warm: the persisted spec was re-prepared
    assert len(warm._prepared) == 1
    (cached,) = warm._prepared.values()
    assert len(cached.run()) >= want
    assert (500, 501) in rows_of(warm.db["R"])
    warm.db.close()


def test_session_checkpoint_requires_durable_db():
    from repro.engine import connect

    session = connect({"R": [(1, 2)]})
    with pytest.raises(TypeError):
        session.checkpoint()


def test_connect_rejects_db_and_path(tmp_path):
    from repro.engine import connect

    with pytest.raises(TypeError):
        connect({"R": [(1, 2)]}, path=str(tmp_path / "db"))


def test_corrupt_session_manifest_recovers_cold(tmp_path):
    from repro.engine import connect
    from repro.engine.session import SESSION_FILE

    path = str(tmp_path / "db")
    session = connect(path=path)
    session.add("R", (1, 2))
    session.prepare("q(x, y) :- R(x, y)")
    session.checkpoint()
    session.db.close()
    with open(os.path.join(path, SESSION_FILE), "wb") as handle:
        handle.write(b"{not json")
    cold = connect(path=path)  # data recovers; plans just start cold
    assert not cold._prepared
    assert rows_of(cold.db["R"]) == {(1, 2)}
    cold.db.close()


def test_durable_rejects_foreign_dictionary(tmp_path):
    from repro.db.columnar import ColumnarRelation, Dictionary

    db = attach(str(tmp_path / "db"), backend="columnar")
    alien = ColumnarRelation("A", 1, dictionary=Dictionary())
    with pytest.raises(ValueError):
        db.add_relation(alien)
    db.close()
