"""Edge cases across modules: disconnected queries, repeated variables,
duplicate scopes, degenerate inputs."""

import itertools

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.direct_access import LexDirectAccess, SumOrderDirectAccess
from repro.direct_access.layered import candidate_join_trees, find_layered_tree
from repro.enumeration import ConstantDelayEnumerator
from repro.counting import count_answers, count_free_connex
from repro.joins import generic_join, yannakakis_full
from repro.joins.fc_reduce import free_connex_reduce
from repro.query import catalog, parse_query
from repro.workloads import random_database


# ---------------------------------------------------------------------
# disconnected queries (cross products)
# ---------------------------------------------------------------------

CROSS = parse_query("q(x, y) :- R(x), S(y)")


def cross_db():
    return Database.from_dict(
        {"R": [(1,), (2,), (3,)], "S": [(10,), (20,)]}
    )


def test_cross_product_evaluators_agree():
    db = cross_db()
    expected = {(a, b) for a in (1, 2, 3) for b in (10, 20)}
    assert CROSS.evaluate_brute_force(db) == expected
    assert generic_join(CROSS, db) == expected
    assert yannakakis_full(CROSS, db).to_tuples(CROSS.head) == expected
    assert count_answers(CROSS, db) == 6
    assert set(ConstantDelayEnumerator(CROSS, db)) == expected


@pytest.mark.parametrize("order", [("x", "y"), ("y", "x")])
def test_cross_product_direct_access(order):
    db = cross_db()
    accessor = LexDirectAccess(CROSS, db, order=order)
    key = [CROSS.head.index(v) for v in order]
    expected = sorted(
        CROSS.evaluate_brute_force(db),
        key=lambda t: tuple(t[p] for p in key),
    )
    assert accessor.materialize() == expected


def test_disconnected_three_components():
    query = parse_query("q(x, y, z) :- R(x), S(y), T(z)")
    db = Database.from_dict({"R": [(1,)], "S": [(2,), (3,)], "T": [(4,)]})
    assert count_free_connex(query, db) == 2
    accessor = LexDirectAccess(query, db, order=("z", "y", "x"))
    assert len(accessor) == 2


# ---------------------------------------------------------------------
# repeated variables inside atoms
# ---------------------------------------------------------------------

def test_repeated_variable_atom_through_the_stack():
    query = parse_query("q(x, y) :- R(x, x), S(x, y)")
    db = Database.from_dict(
        {"R": [(1, 1), (2, 3), (4, 4)], "S": [(1, 9), (4, 8), (2, 7)]}
    )
    expected = {(1, 9), (4, 8)}
    assert query.evaluate_brute_force(db) == expected
    assert generic_join(query, db) == expected
    assert count_answers(query, db) == 2
    assert set(ConstantDelayEnumerator(query, db)) == expected


def test_unary_atoms_everywhere():
    query = parse_query("q(x) :- R(x), S(x)")
    db = Database.from_dict({"R": [(1,), (2,)], "S": [(2,), (3,)]})
    assert generic_join(query, db) == {(2,)}
    assert count_answers(query, db) == 1
    assert LexDirectAccess(query, db).materialize() == [(2,)]


# ---------------------------------------------------------------------
# duplicate scopes / parallel atoms
# ---------------------------------------------------------------------

def test_parallel_atoms_intersect():
    query = parse_query("q(x, y) :- R(x, y), S(x, y)")
    db = Database.from_dict(
        {"R": [(1, 2), (3, 4)], "S": [(1, 2), (5, 6)]}
    )
    expected = {(1, 2)}
    assert generic_join(query, db) == expected
    assert yannakakis_full(query, db).to_tuples(query.head) == expected
    assert count_answers(query, db) == 1
    reduced = free_connex_reduce(query, db)
    assert reduced.answer_frame().to_tuples(query.head) == expected


def test_candidate_join_trees_with_duplicate_bags():
    bags = {0: frozenset({"x", "y"}), 1: frozenset({"x", "y"})}
    trees = candidate_join_trees(bags)
    assert trees
    for tree in trees:
        tree.validate()


def test_layered_tree_with_contained_bags():
    bags = {
        0: frozenset({"x", "y", "z"}),
        1: frozenset({"y"}),
    }
    layered = find_layered_tree(bags, ("x", "y", "z"))
    assert layered is not None


# ---------------------------------------------------------------------
# degenerate databases
# ---------------------------------------------------------------------

def test_singleton_database_pipeline():
    query = catalog.path_query(2)
    db = Database.from_dict({"R1": [(1, 2)], "R2": [(2, 3)]})
    assert count_answers(query, db) == 1
    assert list(ConstantDelayEnumerator(query, db)) == [(1, 2, 3)]
    accessor = LexDirectAccess(query, db)
    assert accessor.access(0) == (1, 2, 3)
    assert len(accessor) == 1


def test_all_relations_empty():
    query = catalog.path_query(2)
    db = Database()
    db.add_relation(Relation("R1", 2))
    db.add_relation(Relation("R2", 2))
    assert count_answers(query, db) == 0
    assert list(ConstantDelayEnumerator(query, db)) == []
    assert len(LexDirectAccess(query, db)) == 0


def test_sum_order_with_negative_and_tied_weights():
    query = parse_query("q(x, y) :- R(x, y)")
    db = Database.from_dict({"R": [(1, 2), (2, 1), (3, 0)]})
    weights = {0: -5.0, 1: 1.0, 2: 1.0, 3: 2.0}
    accessor = SumOrderDirectAccess(query, db, weights)
    rows = [accessor.access(i) for i in range(3)]
    # (3,0) weighs -3; the two (1,2)/(2,1) ties weigh 2 each.
    assert rows[0] == (3, 0)
    assert set(rows[1:]) == {(1, 2), (2, 1)}


def test_large_domain_values_are_fine():
    query = catalog.path_query(2)
    big = 10**15
    db = Database.from_dict(
        {"R1": [(big, big + 1)], "R2": [(big + 1, big + 2)]}
    )
    assert count_answers(query, db) == 1


def test_string_domain_values():
    query = parse_query("q(a, b) :- Knows(a, b)")
    db = Database.from_dict(
        {"Knows": [("ada", "grace"), ("grace", "mary")]}
    )
    accessor = LexDirectAccess(query, db, order=("a", "b"))
    assert accessor.access(0) == ("ada", "grace")


# ---------------------------------------------------------------------
# direct access exhaustive order sweep (mixed-radix correctness)
# ---------------------------------------------------------------------

def test_semijoin_reducible_query_all_orders():
    query = catalog.semijoin_reducible_query()
    db = random_database(query, 25, 4, seed=5)
    answers = query.evaluate_brute_force(db)
    head = tuple(query.head)
    for order in itertools.permutations(sorted(query.variables)):
        try:
            accessor = LexDirectAccess(query, db, order=order)
        except ValueError:
            continue  # disruptive trio for this order
        key = [head.index(v) for v in order]
        expected = sorted(
            answers, key=lambda t: tuple(t[p] for p in key)
        )
        assert accessor.materialize() == expected, order
