"""Fractional edge covers, AGM exponents, independent sets / covers."""

import math

import pytest
from hypothesis import given

from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.widths import (
    agm_bound,
    agm_exponent,
    fractional_edge_cover,
    integral_edge_cover_number,
    max_independent_set,
)
from repro.query import catalog

from tests.strategies import acyclic_hypergraph_edges


def test_triangle_agm_exponent_three_halves():
    rho = agm_exponent(catalog.triangle_query().hypergraph())
    assert math.isclose(rho, 1.5, abs_tol=1e-9)


def test_loomis_whitney_agm_exponent():
    # Example 3.4: rho* = k/(k-1), the exponent of the LW algorithm.
    for k in (3, 4, 5, 6):
        rho = agm_exponent(catalog.loomis_whitney_query(k).hypergraph())
        assert math.isclose(rho, k / (k - 1), abs_tol=1e-9), k


def test_cycle_agm_exponent_k_over_two():
    for k in (4, 5, 6):
        rho = agm_exponent(catalog.cycle_query(k).hypergraph())
        assert math.isclose(rho, k / 2, abs_tol=1e-9), k


def test_path_agm_exponent_integral():
    # Path with k edges: cover with ceil((k+1)/2) alternate edges.
    rho = agm_exponent(catalog.path_query(3).hypergraph())
    assert math.isclose(rho, 2.0, abs_tol=1e-9)


def test_clique_query_agm_exponent():
    rho = agm_exponent(catalog.clique_query(4).hypergraph())
    assert math.isclose(rho, 2.0, abs_tol=1e-9)


def test_edge_cover_weights_cover_each_vertex():
    h = catalog.triangle_query().hypergraph()
    value, weights = fractional_edge_cover(h)
    for v in h.vertices:
        covered = sum(
            w for i, w in weights.items() if v in h.edges[i]
        )
        assert covered >= 1 - 1e-9
    assert math.isclose(sum(weights.values()), value, abs_tol=1e-9)


def test_edge_cover_subset():
    h = catalog.path_query(2).hypergraph()
    value, _ = fractional_edge_cover(h, subset={"v1"})
    assert math.isclose(value, 1.0, abs_tol=1e-9)


def test_edge_cover_infeasible_vertex():
    h = Hypergraph({"a", "b"}, [frozenset({"a"})])
    with pytest.raises(ValueError):
        fractional_edge_cover(h, subset={"b"})


def test_agm_bound_values():
    h = catalog.triangle_query().hypergraph()
    assert math.isclose(agm_bound(h, 100), 1000.0, rel_tol=1e-6)
    assert agm_bound(h, 0) == 0.0
    with pytest.raises(ValueError):
        agm_bound(h, -1)


def test_max_independent_set_star():
    h = catalog.star_query(3).hypergraph()
    independent = max_independent_set(h, {"x1", "x2", "x3"})
    assert independent == frozenset({"x1", "x2", "x3"})


def test_max_independent_set_respects_edges():
    h = catalog.path_query(2).hypergraph()
    independent = max_independent_set(h)
    assert independent == frozenset({"v1", "v3"})


def test_integral_edge_cover_star():
    h = catalog.star_query(3).hypergraph()
    assert integral_edge_cover_number(h) == 3


def test_integral_edge_cover_covering_atom():
    q = catalog.star_query_full(2)
    h = q.hypergraph().with_extra_edge(q.variables)
    assert integral_edge_cover_number(h) == 1


@given(acyclic_hypergraph_edges(max_vertices=6))
def test_acyclic_cover_equals_independence(edges):
    """[39, Lemma 19]: on acyclic hypergraphs, min edge cover =
    max independent set (the fact behind Theorem 3.26)."""
    vertices = {v for e in edges for v in e}
    h = Hypergraph(vertices, edges)
    assert is_acyclic(h)
    cover = integral_edge_cover_number(h)
    independent = len(max_independent_set(h))
    assert cover == independent


@given(acyclic_hypergraph_edges(max_vertices=6))
def test_fractional_at_most_integral(edges):
    vertices = {v for e in edges for v in e}
    h = Hypergraph(vertices, edges)
    fractional, _ = fractional_edge_cover(h)
    assert fractional <= integral_edge_cover_number(h) + 1e-9
