"""Stateful durability fuzzing: crashes anywhere, parity everywhere.

A hypothesis :class:`RuleBasedStateMachine` drives one durable
database per run through arbitrary interleavings of single-tuple
updates, bulk loads, removing ``retain``\\ s, compactions,
checkpoints, clean reopens, and **injected crashes at any declared
fault point**, checking after every step that the durable content is
bit-identical to a plain python-dict oracle.

The crash rule is the heart: it arms a fault point, attempts one
mutation (or checkpoint), and — whether or not the crash fired —
recovers and requires the surviving content to be *either* the
pre-op or the post-op oracle (``sync="always"``: an acked mutation
is durable, an interrupted one vanishes atomically).  The oracle
then adopts whichever state survived, and the interleaving continues
on the recovered database — so recovery is exercised not just as an
endpoint but as a *resumable* state.

One machine per backend proves the guarantee is backend-independent.
"""

import shutil
import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.db import attach
from repro.db import checkpoint as _checkpoint  # registers ckpt.* points
from repro.util import faultpoints
from repro.util.faultpoints import InjectedCrash, known_fault_points

assert _checkpoint.CRASH_POINTS  # the import above is load-bearing

RELATIONS = ("R", "S")
values = st.integers(min_value=0, max_value=6)
rows = st.tuples(values, values)
relations = st.sampled_from(RELATIONS)


def durable_state(db):
    return {rel.name: set(map(tuple, rel)) for rel in db}


def net(state):
    return {name: rows for name, rows in state.items() if rows}


class DurabilityMachine(RuleBasedStateMachine):
    backend = "columnar"

    def __init__(self):
        super().__init__()
        self.root = tempfile.mkdtemp(prefix="repro-durability-")
        self.db = None
        self.oracle = {}

    @initialize()
    def open_fresh(self):
        faultpoints.reset()
        self.db = attach(self.root, backend=self.backend, sync="always")

    # -- plain mutations (mirrored into the oracle) --------------------
    def _rel(self, name):
        self.oracle.setdefault(name, set())
        return self.db.ensure_relation(name, 2)

    @rule(name=relations, row=rows)
    def add(self, name, row):
        self._rel(name).add(row)
        self.oracle[name].add(row)

    @rule(name=relations, row=rows)
    def discard(self, name, row):
        self._rel(name).discard(row)
        self.oracle[name].discard(row)

    @rule(name=relations, batch=st.lists(rows, max_size=8))
    def bulk_add(self, name, batch):
        self._rel(name).add_all(batch)
        self.oracle[name].update(batch)

    @rule(name=relations, modulus=st.integers(min_value=2, max_value=4))
    def retain(self, name, modulus):
        self._rel(name).retain(lambda t: t[0] % modulus == 0)
        self.oracle[name] = {
            t for t in self.oracle[name] if t[0] % modulus == 0
        }

    @rule(name=relations)
    def compact(self, name):
        getattr(self._rel(name), "compact", lambda: 0)()

    # -- durability events ---------------------------------------------
    @rule()
    def checkpoint(self):
        self.db.checkpoint()

    @rule(name=relations, batch=st.lists(rows, min_size=1, max_size=6))
    def checkpoint_with_pending_deltas(self, name, batch):
        """Checkpoint while un-compacted op-log deltas exist: the
        snapshot stores the merged view plus exact per-relation
        stamps, so reopening recovers content *and* ``mutation_stamp``
        sequences bit-identically without compaction ever running."""
        rel = self._rel(name)
        rel.add_all(batch)  # a fresh, un-folded delta segment
        self.oracle[name].update(batch)
        self.db.checkpoint()
        stamps = {r.name: r.mutation_stamp for r in self.db}
        self.db.close()
        self.db = attach(self.root)
        assert {r.name: r.mutation_stamp for r in self.db} == stamps
        assert net(durable_state(self.db)) == net(self.oracle)

    @rule()
    def clean_reopen(self):
        stamps = {r.name: r.mutation_stamp for r in self.db}
        self.db.close()
        self.db = attach(self.root)
        # a clean close/attach is exact: content *and* stamps
        assert {r.name: r.mutation_stamp for r in self.db} == stamps

    @rule(
        point=st.sampled_from(sorted(known_fault_points())),
        name=relations,
        row=rows,
        do_checkpoint=st.booleans(),
    )
    def crash_and_recover(self, point, name, row, do_checkpoint):
        before = {k: set(v) for k, v in self.oracle.items()}
        after = {k: set(v) for k, v in before.items()}
        if not do_checkpoint:
            # the post-op candidate is decided *before* the attempt: a
            # crash after the record is fully framed (e.g. at
            # wal.append.written) legitimately recovers the op applied
            after.setdefault(name, set()).add(row)
        faultpoints.arm(point, at=1)
        try:
            if do_checkpoint:
                self.db.checkpoint()  # content-preserving: after == before
            else:
                self._rel(name).add(row)
        except InjectedCrash:
            pass
        finally:
            faultpoints.reset()
            try:
                self.db.close()
            except InjectedCrash:  # pragma: no cover
                pass
        self.db = attach(self.root)
        recovered = durable_state(self.db)
        assert net(recovered) in (net(before), net(after)), (
            f"crash at {point} recovered neither the pre- nor the "
            f"post-op state"
        )
        self.oracle = {k: set(v) for k, v in recovered.items()}

    # -- the parity invariant ------------------------------------------
    @invariant()
    def durable_matches_oracle(self):
        if self.db is None:
            return
        assert net(durable_state(self.db)) == net(self.oracle)

    def teardown(self):
        faultpoints.reset()
        if self.db is not None:
            try:
                self.db.close()
            except InjectedCrash:  # pragma: no cover
                pass
        shutil.rmtree(self.root, ignore_errors=True)


class PythonDurabilityMachine(DurabilityMachine):
    backend = "python"


class ColumnarDurabilityMachine(DurabilityMachine):
    backend = "columnar"


class ShardedDurabilityMachine(DurabilityMachine):
    backend = "sharded"


_stateful = settings(
    max_examples=10, stateful_step_count=20, deadline=None
)

TestPythonDurability = PythonDurabilityMachine.TestCase
TestPythonDurability.settings = _stateful
TestColumnarDurability = ColumnarDurabilityMachine.TestCase
TestColumnarDurability.settings = _stateful
TestShardedDurability = ShardedDurabilityMachine.TestCase
TestShardedDurability.settings = _stateful
