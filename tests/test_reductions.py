"""Every reduction of the paper, verified end to end.

For each reduction: yes-instances and no-instances of the source
problem map to the correct query-level outcome, and the instance-size
accounting claimed in the proof holds.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matmul import sparse_bmm
from repro.query import catalog, parse_query
from repro.reductions import (
    CliqueEmbedding,
    DominatingSetToStarCounting,
    HypercliqueToLoomisWhitney,
    ThreeSumToSumOrderAccess,
    TriangleToCyclicCQ,
    blocked_star_query,
    bmm_via_enumeration,
    build_star_database,
    detect_triangle_via_direct_access,
    detect_triangle_via_testing,
    example_5cycle_embedding,
    figure1_ascii,
    has_k_clique_np,
    permutation_relation,
    split_k,
)
from repro.reductions.hypotheses import ALL_HYPOTHESES
from repro.reductions.triangle_cq import database_size_blowup
from repro.solvers import (
    has_dominating_set,
    has_hyperclique_brute,
    has_k_clique_brute,
    has_triangle_naive,
    min_weight_k_clique_brute,
    threesum_hashing,
)
from repro.workloads import (
    plant_hyperclique,
    planted_clique_graph,
    random_graph,
    random_sparse_boolean_matrix,
    random_uniform_hypergraph,
    random_weighted_graph,
    threesum_instance,
    triangle_free_graph,
)
from repro.workloads.instances import dominating_set_instance


# ---------------------------------------------------------------------
# Proposition 3.3
# ---------------------------------------------------------------------

CYCLIC_GRAPHLIKE_TARGETS = [
    catalog.triangle_query(),
    catalog.cycle_query(4, boolean=True),
    catalog.cycle_query(5, boolean=True),
    catalog.cycle_query(6, boolean=True),
    parse_query("q() :- A(p, x), R(x, y), S(y, z), T(z, x)"),
]


@pytest.mark.parametrize(
    "target", CYCLIC_GRAPHLIKE_TARGETS, ids=lambda q: q.name
)
def test_prop33_yes_and_no_instances(target):
    yes = triangle_free_graph(20, 35, seed=1, plant_triangle=True)
    no = triangle_free_graph(20, 35, seed=2)
    reduction = TriangleToCyclicCQ(target)
    assert reduction.decide_triangle(yes)
    assert not reduction.decide_triangle(no)


def test_prop33_database_is_linear_in_graph():
    target = catalog.cycle_query(5, boolean=True)
    small = database_size_blowup(target, random_graph(20, 30, seed=3))
    large = database_size_blowup(target, random_graph(200, 300, seed=4))
    # size(D) grows linearly: ratio of database sizes tracks ratio of
    # graph sizes within a constant factor.
    assert large[1] <= 12 * large[0]
    assert small[1] <= 12 * small[0]


def test_prop33_rejects_wrong_queries():
    with pytest.raises(ValueError):
        TriangleToCyclicCQ(catalog.path_query(2, boolean=True))  # acyclic
    with pytest.raises(ValueError):
        TriangleToCyclicCQ(catalog.loomis_whitney_query(4))  # arity 3
    with pytest.raises(ValueError):
        TriangleToCyclicCQ(
            parse_query("q() :- R(x, y), R(y, z), R(z, x)")
        )  # self-joins


@pytest.mark.parametrize("seed", range(3))
def test_prop33_agrees_with_solver_on_random_graphs(seed):
    graph = random_graph(14, 25, seed=seed)
    reduction = TriangleToCyclicCQ(catalog.cycle_query(4, boolean=True))
    assert reduction.decide_triangle(graph) == has_triangle_naive(graph)


# ---------------------------------------------------------------------
# Theorem 3.5
# ---------------------------------------------------------------------

def test_thm35_permutation_relation_size():
    edges = random_uniform_hypergraph(8, 3, 12, seed=5)
    rows = permutation_relation(edges, 3)
    assert len(rows) == 12 * 6  # 3! orderings per edge


def test_thm35_yes_and_no():
    base = random_uniform_hypergraph(9, 3, 20, seed=6)
    reduction = HypercliqueToLoomisWhitney(4)
    assert reduction.decide_hyperclique(base) == has_hyperclique_brute(
        base, 3, 4
    )
    planted, _ = plant_hyperclique(base, 9, 3, 4, seed=7)
    assert reduction.decide_hyperclique(planted)


def test_thm35_rejects_small_k():
    with pytest.raises(ValueError):
        HypercliqueToLoomisWhitney(3)


# ---------------------------------------------------------------------
# Lemma 3.9
# ---------------------------------------------------------------------

def test_lemma39_blocked_star_query_shape():
    q = blocked_star_query(3, 2)
    assert len(q.atoms) == 3
    assert all(a.arity == 3 for a in q.atoms)
    assert len(q.head) == 6
    assert not q.is_self_join_free()
    with pytest.raises(ValueError):
        blocked_star_query(0, 1)


def test_lemma39_requires_divisibility():
    with pytest.raises(ValueError):
        DominatingSetToStarCounting(2, 5)


@pytest.mark.parametrize("k,k_prime", [(2, 2), (3, 3), (2, 4)])
def test_lemma39_matches_solver(k, k_prime):
    for seed, plant in ((8, True), (9, False)):
        graph = dominating_set_instance(8, 9, k_prime, seed=seed, plant=plant)
        reduction = DominatingSetToStarCounting(k, k_prime)
        assert reduction.has_dominating_set(graph) == has_dominating_set(
            graph, k_prime
        ), (k, k_prime, seed)


def test_lemma39_relation_size_bound():
    graph = dominating_set_instance(7, 8, 2, seed=10)
    reduction = DominatingSetToStarCounting(2, 4)  # block = 2
    db = reduction.build_database(graph)
    n = graph.number_of_nodes()
    assert db.size() <= n ** (reduction.block + 1)


# ---------------------------------------------------------------------
# Theorem 3.15
# ---------------------------------------------------------------------

def test_thm315_database_encodes_transpose():
    a = random_sparse_boolean_matrix(6, 5, 8, seed=11)
    b = random_sparse_boolean_matrix(5, 7, 9, seed=12)
    db = build_star_database(a, b)
    assert len(db["R1"]) == a.nnz
    assert len(db["R2"]) == b.nnz
    assert all((j, k) in db["R2"] for (k, j) in b.entries)


def test_thm315_product_matches_sparse_bmm():
    for seed in (13, 14):
        a = random_sparse_boolean_matrix(10, 8, 20, seed=seed)
        b = random_sparse_boolean_matrix(8, 12, 25, seed=seed + 100)
        assert bmm_via_enumeration(a, b) == sparse_bmm(a, b)


def test_thm315_dimension_mismatch():
    a = random_sparse_boolean_matrix(4, 4, 4, seed=15)
    b = random_sparse_boolean_matrix(5, 5, 5, seed=16)
    with pytest.raises(ValueError):
        build_star_database(a, b)


@given(
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12),
    st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12),
)
def test_thm315_property(a_entries, b_entries):
    from repro.matmul import SparseBooleanMatrix

    a = SparseBooleanMatrix(a_entries, shape=(5, 5))
    b = SparseBooleanMatrix(b_entries, shape=(5, 5))
    assert bmm_via_enumeration(a, b) == sparse_bmm(a, b)


# ---------------------------------------------------------------------
# Lemmas 3.20 / 3.21 / 3.23
# ---------------------------------------------------------------------

@pytest.mark.parametrize("plant", [True, False])
def test_triangle_via_testing_and_direct_access(plant):
    graph = triangle_free_graph(
        18, 30, seed=17 if plant else 18, plant_triangle=plant
    )
    assert detect_triangle_via_testing(graph) == plant
    assert detect_triangle_via_direct_access(graph) == plant


@pytest.mark.parametrize("seed", range(3))
def test_triangle_via_testing_random_graphs(seed):
    graph = random_graph(15, 28, seed=30 + seed)
    expected = has_triangle_naive(graph)
    assert detect_triangle_via_testing(graph) == expected
    assert detect_triangle_via_direct_access(graph) == expected


# ---------------------------------------------------------------------
# Lemma 3.25
# ---------------------------------------------------------------------

def test_lemma325_planted_and_unplanted():
    reduction = ThreeSumToSumOrderAccess()
    for seed, plant in ((19, True), (20, False)):
        a, b, c = threesum_instance(25, plant=plant, seed=seed)
        assert reduction.solve(a, b, c) == threesum_hashing(a, b, c)


def test_lemma325_instance_size_linear():
    reduction = ThreeSumToSumOrderAccess()
    a, b, c = threesum_instance(40, plant=False, seed=21)
    db, _ = reduction.build_instance(a, b)
    assert db.size() <= 2 * (len(a) + len(b)) + 2


def test_lemma325_custom_query_validation():
    with pytest.raises(ValueError):
        ThreeSumToSumOrderAccess(parse_query("q(x, y) :- R(x, y)"))
    with pytest.raises(ValueError):
        ThreeSumToSumOrderAccess(
            parse_query("q(x, y) :- R(x, u), R(y, u)")
        )  # self-joins
    with pytest.raises(ValueError):
        ThreeSumToSumOrderAccess(catalog.path_query(2).with_head(("v1",)))


def test_lemma325_wider_query():
    query = parse_query("q(x, y, u, w) :- R(x, u), S(u, w), T(w, y)")
    reduction = ThreeSumToSumOrderAccess(query)
    a, b, c = threesum_instance(15, plant=True, seed=22)
    assert reduction.solve(a, b, c) == threesum_hashing(a, b, c)


@given(
    st.lists(st.integers(-15, 15), min_size=1, max_size=8),
    st.lists(st.integers(-15, 15), min_size=1, max_size=8),
    st.lists(st.integers(-15, 15), min_size=1, max_size=8),
)
def test_lemma325_property(a, b, c):
    reduction = ThreeSumToSumOrderAccess()
    assert reduction.solve(a, b, c) == threesum_hashing(a, b, c)


# ---------------------------------------------------------------------
# Theorem 4.1
# ---------------------------------------------------------------------

def test_split_k_parts():
    assert split_k(3) == (1, 1, 1)
    assert split_k(6) == (2, 2, 2)
    assert sum(split_k(7)) == 7
    assert sum(split_k(8)) == 8
    with pytest.raises(ValueError):
        split_k(2)


@pytest.mark.parametrize("k", [3, 4, 5, 6])
def test_thm41_matches_brute(k):
    yes, _ = planted_clique_graph(14, 28, k, seed=23 + k)
    assert has_k_clique_np(yes, k)
    no = random_graph(12, 14, seed=40 + k)
    assert has_k_clique_np(no, k) == has_k_clique_brute(no, k)


def test_thm41_backend_choice():
    graph, _ = planted_clique_graph(12, 20, 4, seed=50)
    assert has_k_clique_np(graph, 4, backend="strassen")


# ---------------------------------------------------------------------
# Section 4.2: clique embeddings
# ---------------------------------------------------------------------

def test_example42_embedding_properties():
    embedding = example_5cycle_embedding()
    assert embedding.clique_size == 5
    assert embedding.edge_depths() == {i: 4 for i in range(5)}
    assert embedding.max_edge_depth() == 4
    assert embedding.power_lower_bound() == pytest.approx(1.25)


def test_embedding_validation_catches_bad_psis():
    query = catalog.cycle_query(5)
    with pytest.raises(ValueError):  # empty block
        CliqueEmbedding(query, (frozenset(),)).validate()
    with pytest.raises(ValueError):  # disconnected block
        CliqueEmbedding(
            query, (frozenset({"v1", "v3"}),)
        ).validate()
    with pytest.raises(ValueError):  # unchecked pair
        CliqueEmbedding(
            query,
            (frozenset({"v1"}), frozenset({"v3"})),
        ).validate()
    with pytest.raises(ValueError):  # unknown variables
        CliqueEmbedding(query, (frozenset({"nope"}),)).validate()


def test_figure1_lists_every_clique_vertex_three_times():
    art = figure1_ascii()
    for i in range(1, 6):
        assert art.count(f"x{i}") == 3


def test_embedding_detects_5_cliques():
    embedding = example_5cycle_embedding()
    yes, _ = planted_clique_graph(9, 16, 5, seed=51)
    assert embedding.has_clique(yes)
    no = random_graph(9, 10, seed=52)
    assert embedding.has_clique(no) == has_k_clique_brute(no, 5)


def test_embedding_min_weight_matches_brute():
    embedding = example_5cycle_embedding()
    for seed in (53, 54):
        graph, weights = random_weighted_graph(9, 28, seed=seed)
        expected = min_weight_k_clique_brute(graph, 5, weights)
        got = embedding.min_weight_clique(graph, weights)
        if expected is None:
            assert got == math.inf
        else:
            assert got == expected


def test_embedding_database_size_accounting():
    """Example 4.3: database size O(n^4) — each atom at most n^4 rows."""
    embedding = example_5cycle_embedding()
    graph = random_graph(6, 12, seed=55)
    db, _ = embedding.build_database(graph)
    n = graph.number_of_nodes()
    for atom in embedding.query.atoms:
        assert len(db[atom.relation]) <= n**4


def test_triangle_embedding_via_clique_query():
    """A K3 embedding into the triangle join query: singleton blocks."""
    query = catalog.triangle_query(boolean=False)
    embedding = CliqueEmbedding(
        query,
        (frozenset({"x"}), frozenset({"y"}), frozenset({"z"})),
    )
    embedding.validate()
    assert embedding.power_lower_bound() == pytest.approx(1.5)
    graph = random_graph(10, 20, seed=56)
    assert embedding.has_clique(graph) == has_triangle_naive(graph)


def test_hypotheses_registry():
    assert len(ALL_HYPOTHESES) == 8
    numbers = sorted(h.number for h in ALL_HYPOTHESES)
    assert numbers == list(range(1, 9))
    keys = {h.key for h in ALL_HYPOTHESES}
    assert len(keys) == 8
