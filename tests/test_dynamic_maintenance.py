"""Stale-answer-structure regressions and post-update parity.

Before PR 3, :class:`LexDirectAccess`, :class:`ConstantDelayEnumerator`
and cached FAQ messages snapshotted the relations at preprocessing time
and kept serving the snapshot after ``add``/``discard`` — silently
wrong answers, no error.  These tests pin the fix from both sides:

- build → mutate → query now fails fast with
  :class:`StaleStructureError` on *both* backends (these tests fail on
  the pre-PR code, which raised nothing);
- with ``on_stale="refresh"`` / the maintainers, post-update answers
  are byte-identical to a from-scratch rebuild, across random update
  streams including delete-everything and re-insert phases.
"""

import random

import pytest

from repro.counting import count_answers
from repro.db.database import Database
from repro.db.interface import StaleStructureError
from repro.direct_access.lex import LexDirectAccess
from repro.dynamic import AcyclicCountMaintainer
from repro.enumeration.constant_delay import ConstantDelayEnumerator
from repro.query import catalog
from repro.semiring.faq import (
    AggregateMaintainer,
    WeightedDatabase,
    aggregate_acyclic,
)
from repro.semiring.semirings import COUNTING, MIN_PLUS

BACKENDS = ("python", "columnar")

STAR = catalog.star_query_full(2, self_join_free=True)
STAR_ORDER = ("z", "x1", "x2")
CHAIN = catalog.path_query(3, boolean=False)


def star_db(backend, m=60, domain=8, seed=0):
    rng = random.Random(seed)
    return Database.from_dict(
        {
            name: [
                (rng.randrange(domain * 2), rng.randrange(domain))
                for _ in range(m)
            ]
            for name in ("R1", "R2")
        },
        backend=backend,
    )


def chain_db(backend, m=60, domain=10, seed=0):
    rng = random.Random(seed)
    return Database.from_dict(
        {
            f"R{i}": [
                (rng.randrange(domain), rng.randrange(domain))
                for _ in range(m)
            ]
            for i in (1, 2, 3)
        },
        backend=backend,
    )


# ----------------------------------------------------------------------
# stale reads fail fast (regression: used to silently serve snapshots)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_lex_access_stale_after_add(backend):
    db = star_db(backend)
    access = LexDirectAccess(STAR, db, STAR_ORDER)
    access.access(0)
    db["R1"].add((999, 0))
    with pytest.raises(StaleStructureError):
        access.access(0)
    with pytest.raises(StaleStructureError):
        len(access)


@pytest.mark.parametrize("backend", BACKENDS)
def test_lex_access_stale_after_discard(backend):
    db = star_db(backend)
    access = LexDirectAccess(STAR, db, STAR_ORDER)
    first = access.access(0)
    db["R1"].discard(next(iter(db["R1"])))
    with pytest.raises(StaleStructureError):
        access.access(0)
    # a rebuilt structure answers (first may or may not still be first)
    assert LexDirectAccess(STAR, db, STAR_ORDER).access(0) is not None
    del first


@pytest.mark.parametrize("backend", BACKENDS)
def test_enumeration_stale_after_mutation(backend):
    db = chain_db(backend)
    enumerator = ConstantDelayEnumerator(CHAIN, db)
    list(enumerator)
    db["R2"].add((77, 78))
    with pytest.raises(StaleStructureError):
        list(enumerator)


def test_materialized_fallback_is_also_stale_checked():
    # star_query (z projected, self-joins) is not free-connex: the
    # strict=False materializing fallback must still detect staleness.
    query = catalog.star_query_sjf(2)
    db = star_db("columnar")
    enumerator = ConstantDelayEnumerator(query, db, strict=False)
    list(enumerator)
    db["R1"].add((55, 3))
    with pytest.raises(StaleStructureError):
        list(enumerator)


# ----------------------------------------------------------------------
# lingering weights (regression: discard left the weight behind)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_discarded_weight_is_purged_not_resurrected(backend):
    db = Database.from_dict(
        {"R1": [(1, 2)], "R2": [(1, 2)]}, backend=backend
    )
    weighted = WeightedDatabase(db)
    weighted.set_weight("R1", (1, 2), 7)
    weighted.discard("R1", (1, 2))
    db["R1"].add((1, 2))  # re-add the same tuple
    # The old weight must not resurrect: unweighted tuples are neutral.
    assert weighted.weight("R1", (1, 2), COUNTING) == COUNTING.one
    assert (1, 2) not in weighted._weights.get("R1", {})
    if backend == "columnar":
        assert weighted.coded_weights("R1") == {}
    weights = weighted.atom_weight_fn(STAR, COUNTING)
    assert aggregate_acyclic(STAR, db, COUNTING, weights) == count_answers(
        STAR, db
    )


def test_weighted_database_stamp_moves_on_weight_changes():
    db = Database.from_dict({"R1": [(1, 2)], "R2": [(3, 2)]},
                            backend="columnar")
    weighted = WeightedDatabase(db)
    stamp = weighted.mutation_stamp
    weighted.set_weight("R1", (1, 2), 4)
    assert weighted.mutation_stamp > stamp
    stamp = weighted.mutation_stamp
    weighted.discard("R1", (1, 2))
    assert weighted.mutation_stamp > stamp


# ----------------------------------------------------------------------
# incremental maintainers track a from-scratch oracle
# ----------------------------------------------------------------------
def random_stream(rng, names, domain, steps):
    for _ in range(steps):
        name = rng.choice(names)
        row = (rng.randrange(domain), rng.randrange(domain))
        yield name, row, rng.random() < 0.45


def test_count_maintainer_matches_recompute_over_stream():
    db = star_db("columnar", m=120, domain=10, seed=5)
    maintainer = AcyclicCountMaintainer(STAR, db)
    rng = random.Random(6)
    for name, row, delete in random_stream(rng, ["R1", "R2"], 22, 250):
        (db[name].discard if delete else db[name].add)(row)
        assert maintainer.count() == count_answers(STAR, db)
    assert maintainer.rebuilds <= 6  # only compaction-driven rebuilds


def test_count_maintainer_delete_everything_then_reinsert():
    db = star_db("columnar", m=25, domain=4, seed=7)
    maintainer = AcyclicCountMaintainer(STAR, db)
    for name in ("R1", "R2"):
        for row in list(db[name]):
            db[name].discard(row)
    assert maintainer.count() == 0
    db["R1"].add((1, 2))
    db["R2"].add((3, 2))
    assert maintainer.count() == 1


def test_count_maintainer_bulk_rewrite_falls_back_to_rebuild():
    db = star_db("columnar", m=30, domain=5, seed=8)
    maintainer = AcyclicCountMaintainer(STAR, db)
    maintainer.count()
    rebuilds = maintainer.rebuilds
    db["R1"].add_all([(100 + i, i % 5) for i in range(200)])  # barrier
    assert maintainer.count() == count_answers(STAR, db)
    assert maintainer.rebuilds == rebuilds + 1


def test_aggregate_maintainer_requires_join_query_and_columnar():
    with pytest.raises(ValueError):
        AggregateMaintainer(
            catalog.star_query_sjf(2), star_db("columnar"), COUNTING
        )
    with pytest.raises(ValueError):
        AggregateMaintainer(STAR, star_db("python"), COUNTING)


def test_weighted_inserts_stay_incremental():
    db = star_db("columnar", m=40, domain=6, seed=9)
    weighted = WeightedDatabase(db)
    maintainer = AggregateMaintainer(STAR, db, COUNTING, weights=weighted)

    def oracle():
        return aggregate_acyclic(
            STAR, db, COUNTING, weighted.atom_weight_fn(STAR, COUNTING)
        )

    assert maintainer.value() == oracle()
    # Weighted single-tuple inserts fold incrementally: the weight
    # change rides the tuple's own delta, so no rebuild is needed.
    for i in range(8):
        weighted.add("R1", (200 + i, i % 6), weight=3)
        assert maintainer.value() == oracle()
    assert maintainer.rebuilds == 0
    # A retroactive weight change on an already-synced tuple cannot
    # fold (the stored column is stale) and must rebuild instead.
    weighted.set_weight("R2", next(iter(db["R2"])), 5)
    assert maintainer.value() == oracle()
    assert maintainer.rebuilds == 1
    # Purge cancelled by a re-add: net tuple delta is empty but the
    # weight reverted to one — must rebuild, not resurrect.
    weighted.discard("R1", (200, 0))
    db["R1"].add((200, 0))
    assert maintainer.value() == oracle()


def test_tropical_maintainer_with_weights_and_delete_fallback():
    db = Database.from_dict(
        {"R1": [(1, 2), (3, 2), (4, 5)], "R2": [(6, 2), (7, 5)]},
        backend="columnar",
    )
    weighted = WeightedDatabase(db)
    weighted.set_weight("R1", (1, 2), 3.5)
    weighted.set_weight("R2", (6, 2), 1.25)
    maintainer = AggregateMaintainer(STAR, db, MIN_PLUS, weights=weighted)

    def oracle():
        return aggregate_acyclic(
            STAR, db, MIN_PLUS, weighted.atom_weight_fn(STAR, MIN_PLUS)
        )

    assert maintainer.value() == oracle()
    weighted.add("R1", (8, 5), weight=0.5)  # insert folds incrementally
    assert maintainer.value() == oracle()
    rebuilds = maintainer.rebuilds
    weighted.discard("R2", (6, 2))  # min has no ⊕-inverse: rebuild
    assert maintainer.value() == oracle()
    assert maintainer.rebuilds > rebuilds


# ----------------------------------------------------------------------
# post-update parity: answers == from-scratch rebuild on both backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_lex_refresh_parity_over_stream(backend):
    db = star_db(backend, m=80, domain=7, seed=11)
    access = LexDirectAccess(STAR, db, STAR_ORDER, on_stale="refresh")
    rng = random.Random(12)
    for step, (name, row, delete) in enumerate(
        random_stream(rng, ["R1", "R2"], 16, 90)
    ):
        (db[name].discard if delete else db[name].add)(row)
        if step % 9 == 0 or step > 84:
            oracle = LexDirectAccess(STAR, db, STAR_ORDER)
            assert len(access) == len(oracle)
            assert access.materialize() == oracle.materialize()


@pytest.mark.parametrize("backend", BACKENDS)
def test_enumeration_refresh_parity_over_stream(backend):
    query = CHAIN
    db = chain_db(backend, m=70, domain=9, seed=13)
    enumerator = ConstantDelayEnumerator(query, db, on_stale="refresh")
    rng = random.Random(14)
    for step, (name, row, delete) in enumerate(
        random_stream(rng, ["R1", "R2", "R3"], 11, 80)
    ):
        (db[name].discard if delete else db[name].add)(row)
        if step % 8 == 0 or step > 74:
            oracle = ConstantDelayEnumerator(query, db)
            assert sorted(enumerator) == sorted(oracle)


@pytest.mark.parametrize("backend", BACKENDS)
def test_full_pipeline_parity_after_delete_all_and_reinsert(backend):
    db = star_db(backend, m=40, domain=5, seed=15)
    access = LexDirectAccess(STAR, db, STAR_ORDER, on_stale="refresh")
    enumerator = ConstantDelayEnumerator(STAR, db, on_stale="refresh")
    for name in ("R1", "R2"):
        for row in list(db[name]):
            db[name].discard(row)
    assert len(access) == 0
    assert list(enumerator) == []
    assert count_answers(STAR, db) == 0
    rows1 = [(1, 2), (3, 2), (4, 4)]
    rows2 = [(5, 2), (6, 4)]
    for row in rows1:
        db["R1"].add(row)
    for row in rows2:
        db["R2"].add(row)
    oracle_access = LexDirectAccess(STAR, db, STAR_ORDER)
    oracle_enum = ConstantDelayEnumerator(STAR, db)
    assert access.materialize() == oracle_access.materialize()
    assert sorted(enumerator) == sorted(oracle_enum)
    assert len(access) == count_answers(STAR, db) == 3


def test_lex_refresh_starting_from_empty_relations():
    db = Database(backend="columnar")
    for name in ("R1", "R2"):
        db.add_relation(db.new_relation(name, 2))
    access = LexDirectAccess(STAR, db, STAR_ORDER, on_stale="refresh")
    assert len(access) == 0
    db["R1"].add((1, 0))
    db["R2"].add((2, 0))
    assert access.materialize() == [(1, 2, 0)]
    maintainer = AcyclicCountMaintainer(STAR, db)
    db["R2"].add((3, 0))
    assert maintainer.count() == 2
    assert access.materialize() == [(1, 2, 0), (1, 3, 0)]


def test_unary_join_query_refresh_parity():
    query = catalog.ConjunctiveQuery(
        ("x",),
        (catalog.Atom("R", ("x",)), catalog.Atom("S", ("x",))),
        name="unary_intersection",
    )
    db = Database(backend="columnar")
    db.add_relation(db.new_relation("R", 1, [(i,) for i in range(6)]))
    db.add_relation(db.new_relation("S", 1, [(i,) for i in range(3, 9)]))
    access = LexDirectAccess(query, db, ("x",), on_stale="refresh")
    maintainer = AcyclicCountMaintainer(query, db)
    assert access.materialize() == [(3,), (4,), (5,)]
    db["R"].add((7,))
    db["S"].discard((4,))
    assert access.materialize() == [(3,), (5,), (7,)]
    assert maintainer.count() == 3 == count_answers(query, db)
