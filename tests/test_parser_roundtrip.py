"""Parser diagnostics and round-trip guarantees.

Two contracts added with the engine facade (which parses user text on
every ``Session.prepare`` call and therefore must fail *legibly*):

1. malformed input names the offending atom's position and quotes the
   grammar production it failed to match — not the raw regex text;
2. printing and reparsing is the identity: ``parse_query(str(q))``
   equals ``q`` for every expressible query.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.query.parser import (
    ATOM_PRODUCTION,
    HEAD_PRODUCTION,
    QueryParseError,
    parse_query,
)
from tests.strategies import conjunctive_queries


# ----------------------------------------------------------------------
# error diagnostics
# ----------------------------------------------------------------------
def test_malformed_atom_reports_position_and_production():
    with pytest.raises(QueryParseError) as excinfo:
        parse_query("q(x) :- R(x, y), S x, y), T(y)")
    message = str(excinfo.value)
    assert "atom at position 2 in the body" in message
    assert ATOM_PRODUCTION in message
    assert "'S x" in message  # the offending text, not a regex dump


def test_first_and_last_atom_positions_are_one_based():
    with pytest.raises(QueryParseError, match="position 1 in the body"):
        parse_query("q(x) :- R x), S(x)")
    with pytest.raises(QueryParseError, match="position 3 in the body"):
        parse_query("q(x) :- R(x), S(x), T-(x)")


def test_bad_variable_names_the_atom_and_argument():
    with pytest.raises(QueryParseError) as excinfo:
        parse_query("q(x) :- R(x, 1st)")
    message = str(excinfo.value)
    assert "position 1 in the body" in message
    assert "'1st'" in message
    assert "'R'" in message


def test_malformed_head_quotes_head_production():
    with pytest.raises(QueryParseError) as excinfo:
        parse_query("q x) :- R(x)")
    message = str(excinfo.value)
    assert "head" in message
    assert HEAD_PRODUCTION in message


def test_empty_atom_and_arity_zero_atom_report_position():
    with pytest.raises(QueryParseError, match="position 2 in the body"):
        parse_query("q(x) :- R(x), , S(x)")
    with pytest.raises(QueryParseError, match="position 2 in the body"):
        parse_query("q(x) :- R(x), S()")


def test_unbalanced_parentheses_report_atom_index():
    with pytest.raises(QueryParseError, match="atom 2"):
        parse_query("q(x) :- R(x), S(x")


def test_missing_separator_quotes_query_production():
    with pytest.raises(QueryParseError, match='":-"'):
        parse_query("q(x) R(x)")


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "q(x, y) :- R(x, z), S(z, y)",
        "q() :- R(x, y), R(y, z), R(z, x)",
        "q(a) :- R(a, a)",
        "triangle(x, y, z) :- E1(x, y), E2(y, z), E3(z, x)",
        "q(v) :- Unary(v)",
    ],
)
def test_fixed_round_trips(text):
    query = parse_query(text)
    reparsed = parse_query(str(query))
    assert reparsed == query
    assert reparsed.name == query.name
    assert str(reparsed) == str(query)


@settings(max_examples=100, deadline=None)
@given(conjunctive_queries(self_join_free=False))
def test_random_round_trips(query):
    reparsed = parse_query(str(query))
    assert reparsed == query
    assert str(reparsed) == str(query)
