"""The dynamic count maintainer vs from-scratch recomputation."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.relation import Relation
from repro.dynamic import HierarchicalCountMaintainer
from repro.query import catalog, parse_query

HIERARCHICAL_QUERIES = [
    parse_query("q(x, y) :- R(x, y)"),
    catalog.star_query_full(2, self_join_free=True),
    catalog.star_query_full(3, self_join_free=True),
    catalog.star_query_full(2),  # self-joins
    parse_query("q(a, b, c) :- R(a, b), S(a, b, c), T(a)"),
    parse_query("q(x, y, u, v) :- R(x, y), S(x, u), T(x, u, v)"),
]


def brute_count(query, relations):
    db = Database()
    for symbol in query.relation_symbols:
        arity = next(
            a.arity for a in query.atoms if a.relation == symbol
        )
        db.add_relation(Relation(symbol, arity, relations[symbol]))
    return query.count_brute_force(db)


def random_update_stream(query, steps, seed):
    rng = random.Random(seed)
    symbols = []
    for symbol in query.relation_symbols:
        arity = next(
            a.arity for a in query.atoms if a.relation == symbol
        )
        symbols.append((symbol, arity))
    for _ in range(steps):
        symbol, arity = rng.choice(symbols)
        row = tuple(rng.randrange(4) for _ in range(arity))
        yield (rng.random() < 0.7, symbol, row)  # 70% inserts


@pytest.mark.parametrize(
    "query", HIERARCHICAL_QUERIES, ids=lambda q: str(q)
)
def test_maintainer_tracks_brute_force(query):
    maintainer = HierarchicalCountMaintainer(query)
    shadow = {symbol: set() for symbol in query.relation_symbols}
    for step, (is_insert, symbol, row) in enumerate(
        random_update_stream(query, 120, seed=hash(query.name) % 997)
    ):
        if is_insert:
            maintainer.insert(symbol, row)
            shadow[symbol].add(row)
        else:
            maintainer.delete(symbol, row)
            shadow[symbol].discard(row)
        if step % 10 == 0:  # brute force is the slow part
            assert maintainer.count() == brute_count(query, shadow), step
    assert maintainer.count() == brute_count(query, shadow)


def test_maintainer_rejects_non_hierarchical():
    with pytest.raises(ValueError):
        HierarchicalCountMaintainer(catalog.path_query(3))


def test_maintainer_rejects_projected_queries():
    with pytest.raises(ValueError):
        HierarchicalCountMaintainer(catalog.star_query_sjf(2))


def test_maintainer_idempotent_updates():
    query = catalog.star_query_full(2, self_join_free=True)
    maintainer = HierarchicalCountMaintainer(query)
    maintainer.insert("R1", (1, 9))
    maintainer.insert("R1", (1, 9))  # duplicate: no effect
    maintainer.insert("R2", (2, 9))
    assert maintainer.count() == 1
    maintainer.delete("R1", (7, 7))  # absent: no effect
    assert maintainer.count() == 1
    maintainer.delete("R1", (1, 9))
    assert maintainer.count() == 0
    maintainer.delete("R1", (1, 9))  # double delete: still fine
    assert maintainer.count() == 0


def test_maintainer_validation_errors():
    query = catalog.star_query_full(2, self_join_free=True)
    maintainer = HierarchicalCountMaintainer(query)
    with pytest.raises(KeyError):
        maintainer.insert("Nope", (1, 2))
    with pytest.raises(ValueError):
        maintainer.insert("R1", (1, 2, 3))


def test_maintainer_bulk_load_matches_static_count():
    from repro.counting import count_answers
    from repro.workloads import random_database

    query = catalog.star_query_full(3, self_join_free=True)
    db = random_database(query, 60, 5, seed=3)
    maintainer = HierarchicalCountMaintainer(query)
    maintainer.load(db)
    assert maintainer.count() == count_answers(query, db)


def test_maintainer_self_join_coupling():
    """With self-joins one physical insert feeds every atom at once."""
    query = catalog.star_query_full(2)  # R(x1,z), R(x2,z), all free
    maintainer = HierarchicalCountMaintainer(query)
    maintainer.insert("R", (1, 9))
    # (x1, x2, z) = (1, 1, 9) uses the same tuple twice.
    assert maintainer.count() == 1
    maintainer.insert("R", (2, 9))
    # pairs: (1,1),(1,2),(2,1),(2,2) at z=9.
    assert maintainer.count() == 4
    maintainer.delete("R", (1, 9))
    assert maintainer.count() == 1


@given(st.integers(0, 10_000))
def test_maintainer_random_streams_property(seed):
    query = catalog.star_query_full(2, self_join_free=True)
    maintainer = HierarchicalCountMaintainer(query)
    shadow = {symbol: set() for symbol in query.relation_symbols}
    for is_insert, symbol, row in random_update_stream(query, 30, seed):
        if is_insert:
            maintainer.insert(symbol, row)
            shadow[symbol].add(row)
        else:
            maintainer.delete(symbol, row)
            shadow[symbol].discard(row)
    assert maintainer.count() == brute_count(query, shadow)
