"""Frame algebra tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.relation import Relation
from repro.joins.frame import Frame


def test_distinct_variables_required():
    with pytest.raises(ValueError):
        Frame(("x", "x"), [])


def test_row_width_checked():
    with pytest.raises(ValueError):
        Frame(("x", "y"), [(1,)])


def test_from_atom_repeated_variables_select_diagonal():
    rel = Relation("R", 2, [(1, 1), (1, 2), (3, 3)])
    frame = Frame.from_atom(rel, ("x", "x"))
    assert frame.variables == ("x",)
    assert frame.rows == {(1,), (3,)}


def test_from_atom_arity_check():
    rel = Relation("R", 2, [(1, 2)])
    with pytest.raises(ValueError):
        Frame.from_atom(rel, ("x",))


def test_unit_and_empty():
    assert len(Frame.unit()) == 1
    assert Frame.empty(("x",)).is_empty()
    # unit is the join identity
    f = Frame(("x",), [(1,), (2,)])
    assert Frame.unit().join(f).rows == f.rows


def test_project_and_rename_and_reorder():
    f = Frame(("x", "y"), [(1, 2), (1, 3)])
    assert f.project(("x",)).rows == {(1,)}
    assert f.rename({"x": "a"}).variables == ("a", "y")
    assert f.reorder(("y", "x")).rows == {(2, 1), (3, 1)}
    with pytest.raises(ValueError):
        f.reorder(("x",))
    with pytest.raises(KeyError):
        f.project(("zz",))


def test_join_on_shared_variable():
    left = Frame(("x", "y"), [(1, 10), (2, 20)])
    right = Frame(("y", "z"), [(10, 100), (10, 101), (30, 300)])
    joined = left.join(right)
    assert joined.variables == ("x", "y", "z")
    assert joined.rows == {(1, 10, 100), (1, 10, 101)}


def test_join_cross_product_when_disjoint():
    left = Frame(("x",), [(1,), (2,)])
    right = Frame(("y",), [(7,)])
    joined = left.join(right)
    assert joined.rows == {(1, 7), (2, 7)}


def test_join_build_side_symmetry():
    small = Frame(("x", "y"), [(1, 1)])
    big = Frame(("y", "z"), [(1, i) for i in range(10)])
    assert small.join(big).rows == {
        (1, 1, i) for i in range(10)
    }
    flipped = big.join(small)
    assert flipped.to_tuples(("x", "y", "z")) == small.join(big).rows


def test_semijoin():
    left = Frame(("x", "y"), [(1, 10), (2, 20)])
    right = Frame(("y",), [(10,)])
    assert left.semijoin(right).rows == {(1, 10)}


def test_semijoin_no_shared_variables():
    left = Frame(("x",), [(1,)])
    assert left.semijoin(Frame(("y",), [(5,)])).rows == {(1,)}
    assert left.semijoin(Frame(("y",), [])).is_empty()


def test_select_in():
    f = Frame(("x", "y"), [(1, 2), (3, 4)])
    assert f.select_in(("x",), {(1,)}).rows == {(1, 2)}


def test_to_tuples_with_order():
    f = Frame(("x", "y"), [(1, 2)])
    assert f.to_tuples(("y", "x")) == {(2, 1)}


@given(
    st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12),
    st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12),
)
def test_join_is_commutative(a_rows, b_rows):
    left = Frame(("x", "y"), a_rows)
    right = Frame(("y", "z"), b_rows)
    forward = left.join(right).to_tuples(("x", "y", "z"))
    backward = right.join(left).to_tuples(("x", "y", "z"))
    assert forward == backward


@given(
    st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12),
)
def test_semijoin_is_idempotent(rows):
    f = Frame(("x", "y"), rows)
    g = Frame(("y", "z"), {(y, y) for _, y in rows})
    once = f.semijoin(g)
    twice = once.semijoin(g)
    assert once.rows == twice.rows
