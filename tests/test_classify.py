"""The classifier reproduces the paper's dichotomies on the catalog."""

import pytest

from repro.classify import classify
from repro.query import catalog, parse_query


def verdict(query, task, **kwargs):
    return classify(query, **kwargs).verdict(task)


# ---------------------------------------------------------------------
# Boolean (Theorem 3.7)
# ---------------------------------------------------------------------

def test_boolean_dichotomy_matches_acyclicity():
    assert verdict(catalog.path_query(3, boolean=True), "boolean").tractable
    assert not verdict(catalog.triangle_query(), "boolean").tractable
    assert not verdict(
        catalog.loomis_whitney_query(5), "boolean"
    ).tractable


def test_boolean_hard_cites_right_hypothesis():
    tri = verdict(catalog.triangle_query(), "boolean")
    assert any(h.key == "triangle" for h in tri.hypotheses)
    lw = verdict(catalog.loomis_whitney_query(5), "boolean")
    assert any(h.key == "hyperclique" for h in lw.hypotheses)


def test_boolean_self_join_caveat():
    q = parse_query("q() :- R(x, y), R(y, z), R(z, x)")
    v = verdict(q, "boolean")
    assert not v.tractable
    assert not v.hypotheses  # lower bound only stated for sjf
    assert "self-join" in v.note


# ---------------------------------------------------------------------
# Counting (Theorems 3.8 / 3.13 / 4.6)
# ---------------------------------------------------------------------

def test_counting_dichotomy():
    assert verdict(catalog.path_query(3), "counting").tractable
    fc, nfc = catalog.free_connex_pair()
    assert verdict(fc, "counting").tractable
    assert not verdict(nfc, "counting").tractable


def test_counting_star_size_lower_bound():
    v = verdict(catalog.star_query_sjf(3), "counting")
    assert not v.tractable
    assert "m^3" in v.lower_bound
    assert any(h.key == "seth" for h in v.hypotheses)


def test_counting_acyclic_join_with_self_joins_tractable():
    # Theorem 3.8 covers self-joins on the tractable side.
    assert verdict(catalog.star_query_full(3), "counting").tractable


# ---------------------------------------------------------------------
# Enumeration (Theorems 3.14 / 3.16 / 3.17 / 4.5)
# ---------------------------------------------------------------------

def test_enumeration_dichotomy():
    assert verdict(catalog.path_query(2), "enumeration").tractable
    assert not verdict(catalog.star_query_sjf(2), "enumeration").tractable


def test_enumeration_cites_sparse_bmm_for_acyclic():
    v = verdict(catalog.star_query_sjf(2), "enumeration")
    assert any(h.key == "sparse-bmm" for h in v.hypotheses)


def test_enumeration_cyclic_join_cites_zero_clique():
    v = verdict(catalog.cycle_query(4), "enumeration")
    assert not v.tractable
    assert any(h.key == "zero-k-clique" for h in v.hypotheses)


def test_enumeration_self_join_open_case():
    q = catalog.cycle_query(4)
    selfjoin = parse_query(
        "q(v1, v2, v3, v4) :- E(v1, v2), E(v2, v3), E(v3, v4), E(v4, v1)"
    )
    v = verdict(selfjoin, "enumeration")
    assert not v.tractable
    assert v.lower_bound is None  # open per Section 3.3
    assert "not fully understood" in v.note


# ---------------------------------------------------------------------
# Direct access (Theorems 3.18 / 3.24 / 3.26)
# ---------------------------------------------------------------------

def test_direct_access_dichotomy():
    assert verdict(catalog.star_query_full(2), "direct-access").tractable
    assert not verdict(catalog.star_query_sjf(2), "direct-access").tractable


def test_lex_order_verdicts():
    q = catalog.path_query(2)
    good = verdict(
        q, "direct-access-lex[v1 > v2 > v3]", lex_order=("v1", "v2", "v3")
    )
    assert good.tractable
    bad = verdict(
        q, "direct-access-lex[v1 > v3 > v2]", lex_order=("v1", "v3", "v2")
    )
    assert not bad.tractable
    assert "disruptive trio" in bad.note
    assert any(h.key == "triangle" for h in bad.hypotheses)


def test_sum_order_verdicts():
    single = parse_query("q(x, y) :- R(x, y)")
    assert verdict(single, "direct-access-sum").tractable
    v = verdict(catalog.path_query(2), "direct-access-sum")
    assert not v.tractable
    assert any(h.key == "3sum" for h in v.hypotheses)


# ---------------------------------------------------------------------
# structural report fields
# ---------------------------------------------------------------------

def test_structure_fields():
    report = classify(catalog.star_query_sjf(2))
    assert report.acyclic and not report.free_connex
    assert report.quantified_star_size == 2
    assert report.agm_exponent == pytest.approx(2.0)
    assert report.hard_witness is None

    tri = classify(catalog.triangle_query())
    assert tri.hard_witness is not None
    assert "cycle" in tri.hard_witness

    lw = classify(catalog.loomis_whitney_query(4))
    assert "hyperclique" in lw.hard_witness


def test_trio_free_order_reported_for_acyclic_joins():
    report = classify(catalog.path_query(2))
    assert report.trio_free_order is not None


def test_render_mentions_all_tasks():
    text = classify(catalog.star_query_sjf(2)).render()
    for task in ("boolean", "counting", "enumeration", "direct-access"):
        assert task in text


def test_verdict_lookup_unknown_task():
    report = classify(catalog.path_query(2))
    with pytest.raises(KeyError):
        report.verdict("time-travel")


def test_boolean_query_task_notes():
    report = classify(catalog.path_query(2, boolean=True))
    assert "decided" in report.verdict("enumeration").note
    assert "decided" in report.verdict("direct-access").note


# ---------------------------------------------------------------------
# tropical aggregation verdict (Section 4.1.2 / 4.2, opt-in)
# ---------------------------------------------------------------------

def test_aggregation_verdict_acyclic_join():
    v = verdict(
        catalog.path_query(2),
        "aggregation-tropical",
        include_embedding_power=True,
    )
    assert v.tractable
    assert "FAQ" in v.upper_bound


def test_aggregation_verdict_triangle_certified_tight():
    v = verdict(
        catalog.triangle_query(boolean=False),
        "aggregation-tropical",
        include_embedding_power=True,
    )
    assert not v.tractable
    assert "m^1.500" in v.lower_bound
    assert any(h.key == "min-weight-k-clique" for h in v.hypotheses)


def test_aggregation_verdict_projected_query_note():
    fc, _ = catalog.free_connex_pair()
    projected = fc.with_head(("x",))
    v = verdict(
        projected, "aggregation-tropical", include_embedding_power=True
    )
    assert not v.tractable
    assert "join queries" in v.note


def test_aggregation_verdict_absent_by_default():
    report = classify(catalog.path_query(2))
    with pytest.raises(KeyError):
        report.verdict("aggregation-tropical")


# ---------------------------------------------------------------------
# dynamic evaluation verdict ([15], survey conclusion)
# ---------------------------------------------------------------------

def test_dynamic_verdict_q_hierarchical():
    v = verdict(
        catalog.star_query_full(2, self_join_free=True), "dynamic"
    )
    assert v.tractable
    assert "q-hierarchical" in v.note


def test_dynamic_verdict_star_query_hard():
    v = verdict(catalog.star_query_sjf(2), "dynamic")
    assert not v.tractable
    assert "projection" in v.note


def test_dynamic_verdict_path3_hard():
    v = verdict(catalog.path_query(3), "dynamic")
    assert not v.tractable
    assert "crossing" in v.note
