"""Sharded-backend parity: the hash-partitioned substrate must agree
with the single-shard columnar backend and the python oracle
everywhere.

Covers the tuple-store surface (`ShardedColumnarRelation` vs
`Relation`), routing determinism, the join stack (semijoin reducer,
Yannakakis, Generic Join) on random queries/databases, merge-based
counting/aggregation, the `delta_since` consistency contract under
update streams, empty shards / `shard_count=1` / skewed partitions,
update streams through `Session`, and the zero-global-materialization
promise of the aggregate path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting import count_answers
from repro.db import Database, Relation, ShardedColumnarRelation
from repro.db.interface import TruncatedHistoryError
from repro.db.columnar import reset_decoded_row_count, decoded_row_count
from repro.db.sharded import (
    coalesced_row_peak,
    reset_coalesced_row_peak,
    shard_ids,
    shard_of_code,
)
from repro.engine import connect
from repro.joins import generic_join, yannakakis_boolean, yannakakis_project
from repro.joins.semijoin import atom_frames, full_reducer_pass
from repro.hypergraph.gyo import is_acyclic, join_tree
from repro.semiring.faq import aggregate_acyclic
from repro.semiring.semirings import COUNTING, MIN_PLUS

from tests.strategies import queries_with_databases

SHARD_COUNTS = (1, 3)


def sharded_copy(db, shard_count):
    return db.to_backend("sharded", shard_count=shard_count)


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=50),
    st.integers(min_value=1, max_value=16),
)
def test_scalar_and_vector_routing_agree(codes, shard_count):
    array = np.asarray(codes, dtype=np.int64)
    vectorized = shard_ids(array, shard_count).tolist()
    assert vectorized == [shard_of_code(c, shard_count) for c in codes]
    assert all(0 <= s < shard_count for s in vectorized)


# ----------------------------------------------------------------------
# tuple-store surface
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40
    ),
    st.sampled_from(SHARD_COUNTS),
)
def test_tuple_store_parity(rows, shard_count):
    oracle = Relation("R", 2, rows)
    sharded = ShardedColumnarRelation(
        "R", 2, rows, shard_count=shard_count
    )
    assert len(sharded) == len(oracle)
    assert sharded.rows() == oracle.rows()
    assert sharded == oracle
    assert sharded.distinct_values(0) == oracle.distinct_values(0)
    assert sharded.active_domain() == oracle.active_domain()
    assert sharded.project([1, 0]).rows() == oracle.project([1, 0]).rows()
    if rows:
        value = rows[0][0]
        assert (
            sharded.select_eq(0, value).rows()
            == oracle.select_eq(0, value).rows()
        )
    # The shards partition the tuple set.
    assert sum(sharded.shard_sizes()) == len(oracle)


def test_skewed_partition_single_hot_key():
    # Every row shares the key-column value: all rows land in ONE
    # shard, the rest stay empty, and everything still works.
    rows = [(7, i) for i in range(100)]
    rel = ShardedColumnarRelation("R", 2, rows, shard_count=4)
    sizes = rel.shard_sizes()
    assert sorted(sizes) == [0, 0, 0, 100]
    assert len(rel) == 100
    assert rel.rows() == Relation("R", 2, rows).rows()


def test_coded_mutators_route_to_shards():
    # Regression: the code-level mutators must route like their
    # value-level counterparts, not write to hidden inherited storage.
    rel = ShardedColumnarRelation("R", 2, shard_count=3)
    one, two = rel.dictionary.encode(1), rel.dictionary.encode(2)
    rel.apply_coded((one, two), True)
    assert len(rel) == 1 and rel.has_coded((one, two)) and (1, 2) in rel
    rel.apply_coded((one, two), False)
    assert rel.is_empty()
    rel.add_coded_batch(np.asarray([[one, two], [two, one]], dtype=np.int64))
    assert rel.rows() == frozenset({(1, 2), (2, 1)})


def test_preferred_backend_never_reencodes_columnar():
    from repro.db.interface import preferred_backend

    huge = 1 << 20
    # Encoded stores stay on their layout; python promotes by size.
    assert preferred_backend(huge, "columnar") == "columnar"
    assert preferred_backend(huge, "sharded") == "sharded"
    assert preferred_backend(huge, "python") == "sharded"
    assert preferred_backend(10, "python") == "python"


def test_empty_relation_and_arity_zero():
    empty = ShardedColumnarRelation("E", 2, shard_count=3)
    assert len(empty) == 0 and empty.is_empty()
    inserted, deleted = empty.delta_since(empty.mutation_stamp)
    assert not len(inserted) and not len(deleted)
    nullary = ShardedColumnarRelation("N", 0, shard_count=3)
    nullary.add(())
    assert len(nullary) == 1 and () in nullary
    nullary.discard(())
    assert nullary.is_empty()


# ----------------------------------------------------------------------
# join stack parity
# ----------------------------------------------------------------------
@given(queries_with_databases())
@settings(max_examples=20)
def test_join_stack_parity(query_db):
    query, db = query_db
    join_query = query.as_join_query()
    acyclic = is_acyclic(query.hypergraph())
    expected = set(generic_join(join_query, db))
    for shard_count in SHARD_COUNTS:
        sharded = sharded_copy(db, shard_count)
        assert set(generic_join(join_query, sharded)) == expected
        if acyclic:
            assert (
                set(yannakakis_project(query, sharded).rows)
                == set(yannakakis_project(query, db).rows)
            )
            if query.is_boolean():
                assert yannakakis_boolean(
                    query, sharded
                ) == yannakakis_boolean(query, db)


@given(queries_with_databases())
@settings(max_examples=20)
def test_full_reducer_parity(query_db):
    query, db = query_db
    query = query.as_join_query()
    if not is_acyclic(query.hypergraph()):
        return
    tree = join_tree(query.hypergraph())
    reduced_py = full_reducer_pass(
        dict(enumerate(atom_frames(query, db))), tree
    )
    for shard_count in SHARD_COUNTS:
        sharded = sharded_copy(db, shard_count)
        reduced_sh = full_reducer_pass(
            dict(enumerate(atom_frames(query, sharded))), tree
        )
        for node, frame in reduced_py.items():
            assert set(reduced_sh[node].rows) == set(frame.rows)


# ----------------------------------------------------------------------
# counting and aggregation (merge of messages)
# ----------------------------------------------------------------------
@given(queries_with_databases())
@settings(max_examples=20)
def test_count_and_aggregate_parity(query_db):
    query, db = query_db
    expected_count = count_answers(query, db)
    join_query = query.as_join_query()
    acyclic = is_acyclic(join_query.hypergraph())
    for shard_count in SHARD_COUNTS:
        sharded = sharded_copy(db, shard_count)
        assert count_answers(query, sharded) == expected_count
        if acyclic:
            for semiring in (COUNTING, MIN_PLUS):
                assert aggregate_acyclic(
                    join_query, sharded, semiring
                ) == aggregate_acyclic(join_query, db, semiring)


def test_aggregate_path_materializes_nothing_global():
    # The acceptance criterion of the sharded substrate: counting and
    # aggregating an acyclic join query over multiple shards performs
    # zero cross-shard coalesces and zero row decodes.
    rows_r = [(i % 97, i % 13) for i in range(3000)]
    rows_s = [(i % 13, i % 41) for i in range(3000)]
    db = Database.from_dict(
        {"R": rows_r, "S": rows_s}, backend="sharded", shard_count=4
    )
    assert all(
        len(rel.shards) == 4 and sum(s > 0 for s in rel.shard_sizes()) > 1
        for rel in db
    )
    from repro.query.parser import parse_query

    query = parse_query("q(x, y, z) :- R(x, y), S(y, z)")
    expected = count_answers(query, db.to_backend("python"))
    reset_coalesced_row_peak()
    reset_decoded_row_count()
    assert count_answers(query, db) == expected
    assert aggregate_acyclic(query, db, MIN_PLUS) == aggregate_acyclic(
        query, db.to_backend("python"), MIN_PLUS
    )
    assert decoded_row_count() == 0
    assert coalesced_row_peak() == 0


# ----------------------------------------------------------------------
# the consistency contract (delta_since) under update streams
# ----------------------------------------------------------------------
ops_streams = st.lists(
    st.tuples(
        st.booleans(),  # True = add, False = discard
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
    ),
    max_size=40,
)


@given(
    st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30),
    ops_streams,
    st.sampled_from(SHARD_COUNTS),
)
def test_delta_since_is_exact(seed_rows, ops, shard_count):
    rel = ShardedColumnarRelation(
        "R", 2, seed_rows, shard_count=shard_count
    )
    oracle = set(rel.rows())
    stamp = rel.mutation_stamp
    snapshot = set(oracle)
    for is_add, row in ops:
        if is_add:
            rel.add(row)
            oracle.add(row)
        else:
            rel.discard(row)
            oracle.discard(row)
    assert rel.rows() == frozenset(oracle)
    try:
        inserted, deleted = rel.delta_since(stamp)
    except TruncatedHistoryError:
        return  # history legitimately truncated (shard compaction)
    decode = rel.dictionary.decode
    ins = {tuple(decode(c) for c in row) for row in inserted.tolist()}
    dele = {tuple(decode(c) for c in row) for row in deleted.tolist()}
    # Exact net change: replaying the delta on the snapshot yields the
    # current content, and the two sides never overlap.
    assert ins == oracle - snapshot
    assert dele == snapshot - oracle
    assert not ins & dele


def test_delta_since_raises_after_barriers():
    rel = ShardedColumnarRelation("R", 2, shard_count=3)
    rel.add_all([(i, i) for i in range(10)])
    stamp = rel.mutation_stamp
    rel.add_all([(i, i + 1) for i in range(200)])  # bulk: barrier
    with pytest.raises(TruncatedHistoryError) as excinfo:
        rel.delta_since(stamp)
    assert excinfo.value.relation == "R"  # parent name, not a shard's
    stamp = rel.mutation_stamp
    assert rel.retain(lambda t: t[0] % 2 == 0) > 0
    with pytest.raises(TruncatedHistoryError):
        rel.delta_since(stamp)
    # Unanswerable stamps from before construction-time history.
    with pytest.raises(TruncatedHistoryError):
        rel.delta_since(-1)


def test_shard_local_contract():
    rel = ShardedColumnarRelation("R", 1, shard_count=4)
    rel.add_all([(i,) for i in range(100)])
    stamps = rel.shard_stamps()
    rel.add((1000,))
    drifted = [
        i
        for i, (before, shard) in enumerate(zip(stamps, rel.shards))
        if shard.mutation_stamp != before
    ]
    assert len(drifted) == 1  # the op touched exactly one shard
    inserted, deleted = rel.shard_delta_since(drifted[0], stamps[drifted[0]])
    assert len(inserted) == 1 and len(deleted) == 0
    for i in range(4):
        if i != drifted[0]:
            ins, dele = rel.shard_delta_since(i, stamps[i])
            assert not len(ins) and not len(dele)


# ----------------------------------------------------------------------
# sessions: updates route to the owning shard, answers stay live
# ----------------------------------------------------------------------
@given(queries_with_databases(max_atoms=3), ops_streams)
@settings(max_examples=10)
def test_session_update_stream_parity(query_db, ops):
    query, db = query_db
    if query.is_boolean() or not query.atoms:
        return
    arity = query.atoms[0].arity
    target = query.atoms[0].relation
    session_sh = connect(db.to_backend("python"), backend="python")
    prepared = session_sh.prepare(query, backend="sharded")
    session_py = connect(db.to_backend("python"), backend="python")
    oracle = session_py.prepare(query, backend="python")
    answers, expected = prepared.run(), oracle.run()
    for is_add, row in ops:
        row = row[:arity] if len(row) >= arity else row + (0,) * (
            arity - len(row)
        )
        if is_add:
            session_sh.add(target, row)
            session_py.add(target, row)
        else:
            session_sh.discard(target, row)
            session_py.discard(target, row)
        assert len(answers) == len(expected)
    assert sorted(answers) == sorted(expected)
    n = len(expected)
    assert answers[0:n] == expected[0:n]


def test_prepared_plan_cache():
    session = connect({"R": [(1, 2)], "S": [(2, 3)]})
    text = "q(x, y) :- R(x, z), S(z, y)"
    first = session.prepare(text)
    assert session.prepare(text) is first  # cache hit
    assert session.prepare(text, order=("y", "x")) is not first
    # A schema change (new relation created at prepare) evicts.
    session.prepare("p(a) :- T(a)")
    refreshed = session.prepare(text)
    assert refreshed is not first
    assert refreshed.count() == first.count()
    # The resolved backend is part of the key.
    forced = session.prepare(text, backend="sharded")
    assert forced is not refreshed
    assert forced.plan.backend == "sharded"
    assert session.prepare(text, backend="sharded") is forced


def test_sharded_session_serves_all_capabilities():
    rows = {"R1": [(i % 23, i % 7) for i in range(300)],
            "R2": [(i % 19, i % 7) for i in range(300)]}
    session = connect(rows, backend="sharded")
    prepared = session.prepare("q(z, x1, x2) :- R1(x1, z), R2(x2, z)")
    oracle = connect(rows).prepare(
        "q(z, x1, x2) :- R1(x1, z), R2(x2, z)"
    )
    answers, expected = prepared.run(), oracle.run()
    assert len(answers) == len(expected)
    assert answers[: len(expected)] == expected[: len(expected)]
    assert sorted(answers) == sorted(expected)
    assert answers.aggregate(COUNTING) == len(expected)
    assert "shards:" in prepared.explain()
