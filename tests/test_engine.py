"""One-facade parity and liveness for the unified query engine.

The acceptance contract of the Session / PreparedQuery / AnswerSet
facade: for every query family, the facade's answers (count, first-k
iteration, random direct access, semiring aggregation) are
byte-identical to the corresponding direct low-level calls on both
execution backends, and a prepared query served across an update
stream never raises :class:`StaleStructureError` while matching a
rebuild-per-query oracle.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.counting.algorithms import count_answers
from repro.db.database import Database
from repro.db.interface import DEFAULT_COLUMNAR_CUTOFF
from repro.direct_access.lex import LexDirectAccess
from repro.engine import Session, connect
from repro.enumeration.constant_delay import ConstantDelayEnumerator
from repro.query.parser import parse_query
from repro.semiring.faq import aggregate_acyclic
from repro.semiring.semirings import COUNTING, MIN_PLUS
from tests.strategies import queries_with_databases, random_database_for

BACKENDS = ("python", "columnar")

# One query per family the planner distinguishes.
FAMILY_QUERIES = {
    "join-chain": "q(a, b, c) :- R(a, b), S(b, c)",
    "projected-free-connex": "q(a) :- R(a, b), S(b, c)",
    "star": "q(a, b) :- R(a, b), T(a, c)",
    "boolean": "q() :- R(a, b), S(b, c)",
    "non-free-connex": "q(a, c) :- R(a, b), S(b, c)",
    "cyclic": "q(x, y, z) :- R(x, y), S(y, z), T(z, x)",
}


def _database_for(text: str, backend: str, seed: int = 11) -> Database:
    query = parse_query(text)
    db = random_database_for(
        query, tuples_per_relation=60, domain_size=9, seed=seed
    )
    return db.to_backend(backend)


def _sorted_oracle(query, db, order):
    answers = sorted(query.evaluate_brute_force(db))
    positions = [query.head.index(v) for v in order]
    answers.sort(key=lambda row: tuple(row[p] for p in positions))
    return answers


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", sorted(FAMILY_QUERIES))
def test_facade_parity_with_low_level(family, backend):
    query = parse_query(FAMILY_QUERIES[family])
    db = _database_for(FAMILY_QUERIES[family], backend)
    session = Session(db)
    prepared = session.prepare(query, backend=backend)
    answers = prepared.run()
    assert prepared.database is db

    # count == the dichotomy-dispatched low-level counter.
    assert answers.count() == count_answers(query, db)
    assert len(answers) == answers.count()

    brute = query.evaluate_brute_force(db)
    if query.is_boolean():
        assert list(answers) == ([()] if brute else [])
        if brute:
            assert answers[0] == ()
        return
    assert set(answers) == brute

    # first-k iteration == the live low-level enumerator, byte for byte.
    if prepared.plan.family == "free-connex":
        low = ConstantDelayEnumerator(query, db, on_stale="refresh")
        low_first = []
        for row in low:
            low_first.append(row)
            if len(low_first) == 7:
                break
        assert answers.first(7) == low_first

    # random direct access == the low-level accessor under the same
    # order (admissible plans), == the sorted materialization always.
    oracle = _sorted_oracle(query, db, prepared.plan.order)
    assert answers[:] == oracle
    rng = random.Random(3)
    indexes = (
        [rng.randrange(len(oracle)) for _ in range(10)] if oracle else []
    )
    if prepared.plan.access_admissible:
        accessor = LexDirectAccess(
            query, db, order=prepared.plan.order, on_stale="refresh"
        )
        for i in indexes:
            assert answers[i] == accessor.access(i)
    for i in indexes:
        assert answers[i] == oracle[i]

    # aggregation == the low-level semiring pipelines.
    assert answers.aggregate(COUNTING) == len(oracle)
    if query.is_join_query() and prepared.plan.classification.acyclic:
        assert answers.aggregate(MIN_PLUS) == aggregate_acyclic(
            query, db, MIN_PLUS
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "family", ["join-chain", "projected-free-connex", "non-free-connex"]
)
def test_prepared_query_survives_update_stream(family, backend):
    """50 updates through the session; never stale, matches a
    rebuild-per-query oracle at every step."""
    text = FAMILY_QUERIES[family]
    query = parse_query(text)
    db = _database_for(text, backend, seed=23)
    session = Session(db)
    prepared = session.prepare(query, backend=backend)
    answers = prepared.run()
    rng = random.Random(99)
    symbols = list(query.relation_symbols)
    for step in range(50):
        symbol = rng.choice(symbols)
        row = (rng.randrange(9), rng.randrange(9))
        if rng.random() < 0.45:
            session.discard(symbol, row)
        else:
            session.add(symbol, row)
        oracle = _sorted_oracle(query, session.db, prepared.plan.order)
        assert len(answers) == len(oracle), step
        assert answers[:] == oracle, step
        assert set(answers) == set(oracle), step
        assert answers.aggregate(COUNTING) == len(oracle), step


def test_maintained_count_stays_incremental_on_columnar():
    text = FAMILY_QUERIES["join-chain"]
    query = parse_query(text)
    db = _database_for(text, "columnar", seed=5)
    session = Session(db)
    prepared = session.prepare(query)
    assert prepared.plan.maintained_count
    answers = prepared.run()
    len(answers)  # build the maintainer
    rng = random.Random(17)
    for _ in range(30):
        session.add("R", (rng.randrange(9), rng.randrange(9)))
        session.discard("S", (rng.randrange(9), rng.randrange(9)))
        assert len(answers) == query.count_brute_force(session.db)
    assert prepared._counter is not None and prepared._counter
    assert prepared._counter.rebuilds == 0


def test_session_mirror_serves_columnar_from_python_store():
    query = parse_query(FAMILY_QUERIES["join-chain"])
    session = connect({"R": [(1, 2), (2, 3)], "S": [(2, 4), (3, 4)]})
    prepared = session.prepare(query, backend="columnar")
    answers = prepared.run()
    assert prepared.database is not session.db
    assert prepared.database.backend == "columnar"
    assert session.backends == ("python", "columnar")
    session.add("R", (7, 2))
    session.discard("S", (3, 4))
    assert answers[:] == _sorted_oracle(
        query, session.db, prepared.plan.order
    )


def test_session_construction_and_conveniences():
    session = connect({"R": [(0, 1)]})
    assert session.size() == 1
    assert session.relation("R").arity == 2
    # prepare() creates relations the query mentions but the db lacks.
    answers = session.execute("q(a, b, c) :- R(a, b), S(b, c)")
    assert len(answers) == 0
    assert "S" in session.db
    session.add("S", (1, 5))
    assert answers[:] == [(0, 1, 5)]
    # Empty sessions and explicit Database instances work too.
    assert connect().size() == 0
    assert Session(Database()).size() == 0
    assert connect(None, backend="columnar").db.backend == "columnar"


def test_backend_cutoff_drives_execution_choice():
    session = connect({"R": [(i, i + 1) for i in range(10)]},
                      columnar_cutoff=5)
    prepared = session.prepare("q(a, b) :- R(a, b)")
    assert prepared.plan.backend == "columnar"
    assert prepared.database.backend == "columnar"
    small = connect({"R": [(0, 1)]})
    assert small.prepare("q(a, b) :- R(a, b)").plan.backend == "python"
    assert DEFAULT_COLUMNAR_CUTOFF > 1


def test_session_and_prepare_argument_errors():
    session = connect({"R": [(0, 1)]})
    with pytest.raises(ValueError, match="unknown backend"):
        connect(backend="fortran")
    with pytest.raises(ValueError, match="unknown backend"):
        session.prepare("q(a, b) :- R(a, b)", backend="fortran")
    with pytest.raises(TypeError, match="Database"):
        Session(42)
    with pytest.raises(ValueError, match="permutation"):
        session.prepare("q(a, b) :- R(a, b)", order=("a",))
    with pytest.raises(ValueError, match="no answer order"):
        session.prepare("q() :- R(a, b)", order=("a",))
    answers = session.execute("q(a) :- R(a, b)")
    with pytest.raises(ValueError, match="no semiring"):
        answers.aggregate()
    with pytest.raises(ValueError, match="join query"):
        answers.aggregate(COUNTING, weights=lambda i, row: 1)
    with pytest.raises(IndexError):
        answers[len(answers)]
    assert answers[-1] == answers[len(answers) - 1]


def test_prepared_semiring_default_and_explain_passthrough():
    session = connect({"R": [(0, 1), (2, 3)]})
    prepared = session.prepare("q(a, b) :- R(a, b)", semiring=COUNTING)
    answers = prepared.run()
    assert answers.aggregate() == 2
    assert answers.explain() == prepared.explain()
    assert "plan for" in answers.explain()
    assert prepared.count() == 2


@settings(max_examples=25, deadline=None)
@given(queries_with_databases(max_atoms=3, max_tuples=12))
def test_facade_parity_random_queries(query_db):
    """Random CQs (any family): facade == brute force on both backends."""
    query, db = query_db
    oracle = query.evaluate_brute_force(db)
    for backend in BACKENDS:
        execution = db.to_backend(backend)
        session = Session(execution)
        answers = session.prepare(query, backend=backend).run()
        assert len(answers) == len(oracle)
        if query.is_boolean():
            assert list(answers) == ([()] if oracle else [])
        else:
            assert set(answers[:]) == oracle
            assert answers.aggregate(COUNTING) == len(oracle)


def test_engine_serving_example_runs(capsys):
    """The serving example (paged reads + update stream) end to end."""
    from tests.test_examples import run_example

    run_example("engine_serving")
    output = capsys.readouterr().out
    assert "zero stale answers" in output
    assert "incrementally maintained" in output


def test_first_k_nonpositive_returns_empty():
    session = connect({"R": [(0, 1), (1, 2)]})
    answers = session.execute("q(a, b) :- R(a, b)")
    assert answers.first(0) == []
    assert answers.first(-3) == []
    assert answers.first(1) == answers.first(10)[:1]


def test_aggregate_cache_not_aliased_across_transient_semirings():
    """Regression: caches were keyed by id(semiring); a GC-recycled id
    served one semiring's cached value for another."""
    from repro.semiring.semirings import Semiring

    session = connect({"R": [(0, 1), (2, 3)]})
    answers = session.execute("q(a, b) :- R(a, b)")
    results = []
    for kind in ("sum", "max", "sum", "max", "sum"):
        if kind == "sum":
            semiring = Semiring(
                "sum", lambda a, b: a + b, lambda a, b: a * b, 0, 1
            )
            expected = 2
        else:
            semiring = Semiring(
                "max", max, lambda a, b: a * b, float("-inf"), 1
            )
            expected = 1
        results.append(answers.aggregate(semiring) == expected)
        del semiring
    assert all(results)


def test_counting_aggregate_shares_the_count_maintainer():
    """aggregate(COUNTING) on a maintained plan must reuse the count
    maintainer, not build a second identical structure."""
    text = FAMILY_QUERIES["join-chain"]
    db = _database_for(text, "columnar", seed=3)
    prepared = Session(db).prepare(text)
    assert prepared.plan.maintained_count
    answers = prepared.run()
    assert len(answers) == answers.aggregate(COUNTING)
    assert COUNTING not in prepared._agg_maintainers
    assert answers.aggregate(MIN_PLUS) is not None  # separate semiring
    assert MIN_PLUS in prepared._agg_maintainers
