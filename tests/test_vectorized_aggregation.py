"""Parity of the vectorized (columnar) answer pipelines vs the scalar
path: semiring aggregation, counting, lexicographic direct access and
constant-delay enumeration — plus the zero-decode contract.

The vectorized message passing of :mod:`repro.semiring.faq`, the
columnar direct-access stores of :mod:`repro.direct_access.lex` and
the columnar enumeration preprocessing must produce results identical
to the Python backend on every input, including empty relations,
arity-0/1 atoms, Boolean queries and weighted databases — and must
never decode a row on their preprocessing paths (asserted through
:func:`repro.db.columnar.decoded_row_count`).
"""

import math
import random

import pytest
from hypothesis import assume, given, settings

from repro.db import columnar
from repro.db.database import Database
from repro.db.relation import Relation
from repro.direct_access import LexDirectAccess
from repro.counting import count_answers, count_free_connex
from repro.enumeration import ConstantDelayEnumerator
from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.gyo import is_acyclic
from repro.matmul.sparse import (
    SparseBooleanMatrix,
    _sparse_bmm_columnar,
    sparse_bmm,
    sparse_bmm_via_dense,
)
from repro.query import catalog, parse_query
from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery
from repro.semiring import (
    BOOLEAN,
    COUNTING,
    MAX_PLUS,
    MIN_PLUS,
    WeightedDatabase,
    aggregate_acyclic,
)
from repro.workloads import random_database

from tests.strategies import queries_with_databases

TROPICAL = [MIN_PLUS, MAX_PLUS]
SEMIRINGS = [COUNTING, BOOLEAN] + TROPICAL


@pytest.fixture
def decode_counter():
    """Resets the decode counter and yields the reader."""
    columnar.reset_decoded_row_count()
    yield columnar.decoded_row_count
    columnar.reset_decoded_row_count()


def _weighted_pair(query, db, db_col, seed):
    """The same random weights installed on both backends."""
    weighted_py = WeightedDatabase(db)
    weighted_col = WeightedDatabase(db_col)
    rng = random.Random(seed)
    for name in query.relation_symbols:
        for row in db[name]:
            weight = rng.randint(-5, 9)
            weighted_py.set_weight(name, row, weight)
            weighted_col.set_weight(name, row, weight)
    return weighted_py, weighted_col


# ---------------------------------------------------------------------
# semiring aggregation parity
# ---------------------------------------------------------------------

@settings(max_examples=40)
@given(queries_with_databases(max_atoms=3, max_tuples=15))
def test_unweighted_aggregation_parity(query_db):
    query, db = query_db
    join_query = query.as_join_query()
    assume(is_acyclic(join_query.hypergraph()))
    db_col = db.to_backend("columnar")
    for semiring in SEMIRINGS:
        expected = aggregate_acyclic(join_query, db, semiring)
        got = aggregate_acyclic(join_query, db_col, semiring)
        assert got == expected
        if semiring in (COUNTING, BOOLEAN):
            # byte-identical, not merely numerically equal
            assert type(got) is type(expected)


@settings(max_examples=25)
@given(queries_with_databases(max_atoms=3, max_tuples=12))
def test_weighted_aggregation_parity(query_db):
    query, db = query_db
    join_query = query.as_join_query()
    assume(is_acyclic(join_query.hypergraph()))
    db_col = db.to_backend("columnar")
    weighted_py, weighted_col = _weighted_pair(
        join_query, db, db_col, seed=5
    )
    for semiring in [COUNTING] + TROPICAL:
        expected = aggregate_acyclic(
            join_query,
            db,
            semiring,
            weighted_py.atom_weight_fn(join_query, semiring),
        )
        got = aggregate_acyclic(
            join_query,
            db_col,
            semiring,
            weighted_col.atom_weight_fn(join_query, semiring),
        )
        assert got == expected


@pytest.mark.parametrize(
    "query",
    [
        catalog.path_query(3),
        catalog.star_query_full(3, self_join_free=True),
        parse_query("q(x, x2, z) :- R(x, x), S(x, z), T(z, x2)"),
    ],
    ids=lambda q: q.name,
)
def test_weighted_tropical_parity_fixed_queries(query):
    db = random_database(query, 40, 5, seed=60)
    db_col = db.to_backend("columnar")
    weighted_py, weighted_col = _weighted_pair(query, db, db_col, seed=61)
    for semiring in TROPICAL:
        expected = aggregate_acyclic(
            query, db, semiring, weighted_py.atom_weight_fn(query, semiring)
        )
        got = aggregate_acyclic(
            query,
            db_col,
            semiring,
            weighted_col.atom_weight_fn(query, semiring),
        )
        assert got == expected


def test_aggregation_empty_relation_columnar():
    query = catalog.path_query(2)
    db = Database(backend="columnar")
    db.add_relation(db.new_relation("R1", 2, [(1, 2)]))
    db.add_relation(db.new_relation("R2", 2))
    assert aggregate_acyclic(query, db, COUNTING) == 0
    assert aggregate_acyclic(query, db, MIN_PLUS) == math.inf
    assert aggregate_acyclic(query, db, BOOLEAN) is False


def test_aggregation_arity_edge_cases_columnar():
    query = ConjunctiveQuery(
        ("x",), (Atom("R", ("x",)), Atom("T", ()))
    )
    for t_rows, expected in (([()], 3), ([], 0)):
        db = Database(backend="columnar")
        db.add_relation(db.new_relation("R", 1, [(1,), (2,), (3,)]))
        db.add_relation(db.new_relation("T", 0, t_rows))
        db_py = db.to_backend("python")
        assert aggregate_acyclic(query, db, COUNTING) == expected
        assert (
            aggregate_acyclic(query, db_py, COUNTING) == expected
        )


@settings(max_examples=25)
@given(queries_with_databases(max_atoms=3, max_tuples=12))
def test_free_connex_counting_parity(query_db):
    """Projected and Boolean queries via count_free_connex/count_answers."""
    query, db = query_db
    assume(is_free_connex(query))
    db_col = db.to_backend("columnar")
    expected = count_free_connex(query, db)
    assert count_free_connex(query, db_col) == expected
    assert count_answers(query, db_col) == count_answers(query, db)


def test_sequence_carrier_semiring_escape_hatch():
    """Semirings with non-scalar carriers run the object-dtype path.

    A component-wise pair semiring (tuple elements) exercises the
    ``frompyfunc`` escape hatch end to end: unit columns, weight
    columns, segment reduces — identical to the scalar fold.
    """
    from repro.semiring.semirings import Semiring

    pair = Semiring(
        name="pair",
        plus=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        times=lambda a, b: (a[0] * b[0], a[1] * b[1]),
        zero=(0, 0),
        one=(1, 1),
    )
    query = catalog.path_query(2)
    db = random_database(query, 25, 4, seed=33)
    db_col = db.to_backend("columnar")
    expected = aggregate_acyclic(query, db, pair)
    assert aggregate_acyclic(query, db_col, pair) == expected
    weighted_py = WeightedDatabase(db)
    weighted_col = WeightedDatabase(db_col)
    rng = random.Random(34)
    for name in query.relation_symbols:
        for row in db[name]:
            weight = (rng.randint(0, 3), rng.randint(0, 3))
            weighted_py.set_weight(name, row, weight)
            weighted_col.set_weight(name, row, weight)
    expected = aggregate_acyclic(
        query, db, pair, weighted_py.atom_weight_fn(query, pair)
    )
    got = aggregate_acyclic(
        query, db_col, pair, weighted_col.atom_weight_fn(query, pair)
    )
    assert got == expected


def test_bigint_weights_escape_hatch():
    """Counting weights >= 2^63 fall back to exact object arithmetic."""
    query = parse_query("q(x, y) :- R(x, y)")
    db = Database.from_dict({"R": [(1, 2), (3, 4)]}, backend="columnar")
    db_py = db.to_backend("python")
    huge = 2**70
    weighted_col = WeightedDatabase(db)
    weighted_py = WeightedDatabase(db_py)
    for weighted in (weighted_col, weighted_py):
        weighted.set_weight("R", (1, 2), huge)
    expected = aggregate_acyclic(
        query, db_py, COUNTING, weighted_py.atom_weight_fn(query, COUNTING)
    )
    got = aggregate_acyclic(
        query, db, COUNTING, weighted_col.atom_weight_fn(query, COUNTING)
    )
    assert got == expected == huge + 1


# ---------------------------------------------------------------------
# weighted databases over columnar relations
# ---------------------------------------------------------------------

def test_weighted_database_columnar_keys_on_codes(decode_counter):
    db = Database.from_dict(
        {"R": [(1, 2), (3, 4)], "S": [(2, 9)]}, backend="columnar"
    )
    weighted = WeightedDatabase(db)
    weighted.set_weight("R", (1, 2), 5)
    assert weighted.weight("R", (1, 2), COUNTING) == 5
    assert weighted.weight("R", (9, 9), COUNTING) == 1  # default one
    with pytest.raises(KeyError):
        weighted.set_weight("R", (99, 99), 3)  # values never encoded
    with pytest.raises(KeyError):
        weighted.set_weight("R", (1, 9), 3)  # known values, absent row
    # Weight bookkeeping reads codes, never decodes relation rows.
    assert decode_counter() == 0
    assert weighted.coded_weights("R") and not weighted.coded_weights("S")


# ---------------------------------------------------------------------
# direct access parity (columnar store vs sort oracle, all i)
# ---------------------------------------------------------------------

GOOD_CASES = [
    (catalog.path_query(2), ("v1", "v2", "v3")),
    (catalog.path_query(3), ("v2", "v1", "v3", "v4")),
    (catalog.star_query_full(2, self_join_free=True), ("z", "x1", "x2")),
    (catalog.semijoin_reducible_query(), ("y", "x", "z", "w")),
]


def _sorted_answers(query, db, order):
    head = tuple(query.head)
    key_positions = [head.index(v) for v in order]
    return sorted(
        query.evaluate_brute_force(db),
        key=lambda row: tuple(row[p] for p in key_positions),
    )


@pytest.mark.parametrize("query, order", GOOD_CASES, ids=lambda x: str(x))
def test_columnar_lex_access_matches_oracle(query, order):
    db = random_database(query, 50, 5, seed=91, backend="columnar")
    accessor = LexDirectAccess(query, db, order=order)
    assert accessor.store_backend == "columnar"
    expected = _sorted_answers(query, db, order)
    assert len(accessor) == len(expected)
    assert accessor.materialize() == expected
    with pytest.raises(IndexError):
        accessor.access(len(accessor))


@settings(max_examples=30)
@given(queries_with_databases(max_atoms=3, max_tuples=10))
def test_columnar_lex_access_property(query_db):
    query, db = query_db
    assume(query.head)
    assume(is_free_connex(query))
    order = tuple(sorted(query.head))
    db_col = db.to_backend("columnar")
    try:
        accessor = LexDirectAccess(query, db_col, order=order)
    except ValueError:
        assume(False)  # no layered tree for this order
        return
    assert accessor.materialize() == _sorted_answers(query, db, order)


def test_columnar_lex_access_empty_result():
    query = parse_query("q(x, y) :- R(x, y), S(y)")
    db = Database(backend="columnar")
    db.add_relation(db.new_relation("R", 2, [(1, 2)]))
    db.add_relation(db.new_relation("S", 1))
    accessor = LexDirectAccess(query, db)
    assert len(accessor) == 0
    with pytest.raises(IndexError):
        accessor.access(0)


# ---------------------------------------------------------------------
# enumeration parity
# ---------------------------------------------------------------------

@settings(max_examples=30)
@given(queries_with_databases(max_atoms=3, max_tuples=12))
def test_columnar_enumeration_parity(query_db):
    query, db = query_db
    assume(query.head)
    assume(is_free_connex(query))
    db_col = db.to_backend("columnar")
    enumerator = ConstantDelayEnumerator(query, db_col)
    assert enumerator.store_backend in ("columnar", "python")
    produced = list(enumerator)
    assert len(produced) == len(set(produced))
    assert set(produced) == query.evaluate_brute_force(db)
    # restartable: fresh iterator each time
    assert list(enumerator) == produced


def test_columnar_enumeration_streams_prefix():
    query = parse_query("q(x, y) :- R(x), S(y)")
    n = 200
    db = Database.from_dict(
        {"R": [(i,) for i in range(n)], "S": [(i,) for i in range(n)]},
        backend="columnar",
    )
    enumerator = ConstantDelayEnumerator(query, db)
    assert enumerator.store_backend == "columnar"
    prefix = []
    for answer in enumerator:
        prefix.append(answer)
        if len(prefix) == 10:
            break
    assert len(prefix) == 10
    assert enumerator.count_via_enumeration() == n * n


# ---------------------------------------------------------------------
# the zero-decode contract
# ---------------------------------------------------------------------

def test_counting_pipeline_zero_decodes(decode_counter):
    query = parse_query("q(x, y) :- R(x, y, a), S(a, b), T(b)")
    db = random_database(query, 200, 8, seed=17, backend="columnar")
    count_free_connex(query, db)
    assert decode_counter() == 0
    join_query = catalog.path_query(3)
    jdb = random_database(join_query, 200, 8, seed=18, backend="columnar")
    aggregate_acyclic(join_query, jdb, COUNTING)
    aggregate_acyclic(join_query, jdb, MIN_PLUS)
    assert decode_counter() == 0


def test_weighted_aggregation_zero_decodes(decode_counter):
    query = catalog.path_query(2)
    db = random_database(query, 150, 6, seed=19, backend="columnar")
    weighted = WeightedDatabase(db)
    rng = random.Random(20)
    for name in query.relation_symbols:
        coded = list(map(tuple, db[name].codes().tolist()))
        dictionary = db[name].dictionary
        for row_codes in coded[::3]:
            row = tuple(dictionary.decode(c) for c in row_codes)
            weighted.set_weight(name, row, rng.randint(0, 9))
    columnar.reset_decoded_row_count()
    aggregate_acyclic(
        query, db, COUNTING, weighted.atom_weight_fn(query, COUNTING)
    )
    assert decode_counter() == 0


def test_lex_preprocessing_zero_decodes(decode_counter):
    query = catalog.star_query_full(2, self_join_free=True)
    db = random_database(query, 300, 12, seed=21, backend="columnar")
    accessor = LexDirectAccess(query, db, order=("z", "x1", "x2"))
    assert accessor.store_backend == "columnar"
    assert decode_counter() == 0
    if len(accessor):  # access decodes exactly the answers it returns
        accessor.access(0)
        assert decode_counter() == 0  # single-value decode, not rows


def test_enumeration_preprocessing_zero_decodes(decode_counter):
    query = parse_query("q(x, y) :- R(x, y, a), S(a, b)")
    db = random_database(query, 300, 8, seed=22, backend="columnar")
    enumerator = ConstantDelayEnumerator(query, db)
    assert enumerator.store_backend == "columnar"
    assert decode_counter() == 0


# ---------------------------------------------------------------------
# vectorized sparse BMM
# ---------------------------------------------------------------------

def _random_sparse(rng, rows, cols, nnz):
    return SparseBooleanMatrix(
        (
            (rng.randrange(rows), rng.randrange(cols))
            for _ in range(nnz)
        ),
        shape=(rows, cols),
    )


@pytest.mark.parametrize("nnz", [5, 40, 400])
def test_sparse_bmm_columnar_matches_scalar(nnz):
    rng = random.Random(nnz)
    a = _random_sparse(rng, 30, 25, nnz)
    b = _random_sparse(rng, 25, 35, nnz)
    expected = sparse_bmm_via_dense(a, b)
    assert sparse_bmm(a, b) == expected  # dispatching entry point
    assert _sparse_bmm_columnar(a, b) == expected  # forced NumPy path
    assert _sparse_bmm_columnar(
        a, SparseBooleanMatrix(shape=(25, 35))
    ).nnz == 0
