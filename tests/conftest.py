"""Shared pytest configuration.

Hypothesis profiles: property tests run with a modest example budget by
default so the full suite stays fast; set HYPOTHESIS_PROFILE=thorough
for a deeper run.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
