"""Cycle evaluation, triangle counting, and the embedding-power search."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.relation import Relation
from repro.joins.cycles import (
    count_triangles,
    count_triangles_combinatorial,
    count_triangles_matrix,
    cycle_boolean_generic,
    cycle_boolean_meet_in_middle,
)
from repro.query import catalog
from repro.reductions.clique_embedding import example_5cycle_embedding
from repro.reductions.embedding_search import (
    best_embedding,
    connected_variable_sets,
    embedding_power_lower_bound,
    iter_embeddings,
)
from repro.workloads import random_database, random_triangle_db


# ---------------------------------------------------------------------
# cycle evaluation
# ---------------------------------------------------------------------

@pytest.mark.parametrize("k", [3, 4, 5, 6])
def test_cycle_algorithms_agree(k):
    query = catalog.cycle_query(k, boolean=True)
    for seed in (1, 2, 3):
        db = random_database(query, 40, 6, seed=seed)
        expected = query.holds(db)
        assert cycle_boolean_generic(db, k) == expected, (k, seed)
        assert cycle_boolean_meet_in_middle(db, k) == expected, (k, seed)


def test_cycle_empty_relation():
    db = Database()
    for i in range(1, 5):
        db.add_relation(Relation(f"R{i}", 2))
    assert not cycle_boolean_meet_in_middle(db, 4)
    assert not cycle_boolean_generic(db, 4)


def test_cycle_single_witness():
    db = Database.from_dict(
        {
            "R1": [(1, 2)],
            "R2": [(2, 3)],
            "R3": [(3, 4)],
            "R4": [(4, 1)],
        }
    )
    assert cycle_boolean_meet_in_middle(db, 4)


def test_cycle_validation():
    db = Database.from_dict({"R1": [(1, 2, 3)]})
    with pytest.raises(ValueError):
        cycle_boolean_meet_in_middle(db, 3)
    with pytest.raises(ValueError):
        cycle_boolean_meet_in_middle(Database(), 2)


# ---------------------------------------------------------------------
# triangle counting
# ---------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(5))
def test_triangle_counts_agree_with_brute(seed):
    db = random_triangle_db(40, 6, seed=seed)
    expected = catalog.triangle_query(boolean=False).count_brute_force(db)
    assert count_triangles_matrix(db) == expected
    assert count_triangles_combinatorial(db) == expected


def test_triangle_count_empty():
    db = Database()
    for name in ("R1", "R2", "R3"):
        db.add_relation(Relation(name, 2))
    assert count_triangles(db) == 0


def test_triangle_count_method_dispatch():
    db = random_triangle_db(20, 5, seed=9)
    assert count_triangles(db, "matrix") == count_triangles(
        db, "combinatorial"
    )
    with pytest.raises(ValueError):
        count_triangles(db, "astrology")


def test_triangle_count_agm_tight():
    from repro.workloads import agm_tight_triangle_db

    db = agm_tight_triangle_db(64)  # side 8: 512 answers
    assert count_triangles(db) == 512


# ---------------------------------------------------------------------
# embedding search
# ---------------------------------------------------------------------

def test_connected_variable_sets_of_path():
    q = catalog.path_query(2)
    sets = connected_variable_sets(q, 2)
    assert frozenset({"v1", "v2"}) in sets
    assert frozenset({"v1", "v3"}) not in sets  # disconnected
    assert all(len(s) <= 2 for s in sets)


def test_triangle_embedding_power_is_three_halves():
    query = catalog.triangle_query(boolean=False)
    power, embedding = embedding_power_lower_bound(
        query, max_clique_size=4, max_block=2
    )
    assert power == pytest.approx(1.5)
    assert embedding.clique_size == 3


def test_loomis_whitney_embedding_power():
    query = catalog.loomis_whitney_query(4, boolean=False)
    embedding = best_embedding(query, 4, max_block=1)
    assert embedding is not None
    assert embedding.power_lower_bound() == pytest.approx(4 / 3)


def test_cycle5_search_beats_example42():
    """[41]: emb(C5) = 5/3 > 5/4, the value Example 4.2's embedding
    certifies; the automatic search finds the better one."""
    query = catalog.cycle_query(5)
    found = best_embedding(query, 5, max_block=3)
    assert found is not None
    example = example_5cycle_embedding()
    assert found.power_lower_bound() == pytest.approx(5 / 3)
    assert found.power_lower_bound() > example.power_lower_bound()


def test_cycle4_embedding_power():
    query = catalog.cycle_query(4)
    power, _ = embedding_power_lower_bound(
        query, max_clique_size=4, max_block=2
    )
    assert power == pytest.approx(1.5)  # emb(C4) = 3/2 per [41]


def test_embeddings_found_are_valid():
    query = catalog.cycle_query(4)
    count = 0
    for embedding in iter_embeddings(query, 3, max_block=2):
        embedding.validate()  # does not raise
        count += 1
        if count >= 25:
            break
    assert count > 0


def test_single_vertex_embedding_always_exists():
    query = catalog.path_query(2)
    embedding = best_embedding(query, 1, max_block=1)
    assert embedding is not None
    assert embedding.power_lower_bound() >= 1.0


def test_embedding_search_respects_block_cap():
    query = catalog.cycle_query(5)
    for embedding in iter_embeddings(query, 3, max_block=2):
        assert all(len(block) <= 2 for block in embedding.psi)
        break
