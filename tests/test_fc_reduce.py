"""The free-connex reduction (the engine behind Thms 3.13/3.17/3.18)."""

import pytest
from hypothesis import assume, given

from repro.db.database import Database
from repro.db.relation import Relation
from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.gyo import is_acyclic
from repro.joins.fc_reduce import free_connex_reduce
from repro.query import catalog, parse_query
from repro.workloads import random_database

from tests.strategies import databases_for, queries_with_databases

FC_QUERIES = [
    parse_query("q(x, y, z) :- R(x, y), S(y, z)"),
    parse_query("q(x, y) :- R(x, y), S(y, z)"),
    parse_query("q(x) :- R(x, y)"),
    parse_query("q(x, y) :- R(x, y, a), S(a, b), T(b)"),
    parse_query("q(x1, x2, z) :- R1(x1, z), R2(x2, z)"),
    parse_query("q(x, y, u) :- R(x, y), S(y), T(u, y)"),
    catalog.star_query_full(3),
    catalog.path_query(4),
]


@pytest.mark.parametrize("query", FC_QUERIES, ids=lambda q: q.name)
def test_reduction_preserves_answers(query):
    assert is_free_connex(query)
    for seed in (71, 72):
        db = random_database(query, 45, 5, seed=seed)
        reduced = free_connex_reduce(query, db)
        assert reduced.answer_frame().to_tuples(
            query.head
        ) == query.evaluate_brute_force(db)


@pytest.mark.parametrize("query", FC_QUERIES, ids=lambda q: q.name)
def test_reduced_query_is_acyclic_join_over_head(query):
    db = random_database(query, 30, 5, seed=73)
    reduced = free_connex_reduce(query, db)
    reduced.tree.validate()
    head_set = set(query.head)
    for frame in reduced.frames.values():
        assert set(frame.variables) <= head_set


def test_reduction_rejects_boolean():
    with pytest.raises(ValueError):
        free_connex_reduce(
            catalog.path_query(2, boolean=True), Database.from_dict(
                {"R1": [(1, 2)], "R2": [(2, 3)]}
            )
        )


def test_reduction_rejects_non_free_connex():
    _, nfc = catalog.free_connex_pair()
    db = random_database(nfc, 10, 4, seed=74)
    with pytest.raises(ValueError):
        free_connex_reduce(nfc, db)


def test_reduction_detects_empty_result():
    query = parse_query("q(x) :- R(x, y), S(y)")
    db = Database()
    db.add_relation(Relation("R", 2, [(1, 2)]))
    db.add_relation(Relation("S", 1))
    reduced = free_connex_reduce(query, db)
    assert reduced.is_empty
    assert reduced.answer_frame().is_empty()


def test_reduction_tuples_all_participate():
    """Every tuple of every reduced frame extends to an answer."""
    query = parse_query("q(x, y) :- R(x, y, a), S(a, b), T(b)")
    db = random_database(query, 40, 4, seed=75)
    reduced = free_connex_reduce(query, db)
    answers = query.evaluate_brute_force(db)
    head = tuple(query.head)
    for frame in reduced.frames.values():
        positions = [head.index(v) for v in frame.variables]
        projections = {
            tuple(a[p] for p in positions) for a in answers
        }
        assert frame.rows == projections


@given(queries_with_databases(max_atoms=3, max_tuples=12))
def test_reduction_property(query_db):
    query, db = query_db
    assume(query.head)
    assume(is_free_connex(query))
    reduced = free_connex_reduce(query, db)
    assert reduced.answer_frame().to_tuples(
        query.head
    ) == query.evaluate_brute_force(db)
