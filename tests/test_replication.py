"""Replicated follower sessions: convergence, retries, reseed.

:mod:`repro.engine.replication` turns the ``delta_since`` contract
into a leader/follower protocol.  Pinned here:

- a follower bootstraps bit-identical content from the handshake and
  converges after arbitrary leader updates via coded delta pulls, on
  all three backends;
- the follower's *own* prepared queries stay live across syncs (the
  replica is a full session, not a passive mirror);
- transient transport failures retry with exponential backoff
  (injectable sleep — the tests assert the actual delays) and give
  up with :class:`ReplicationError` when attempts or the time budget
  run out;
- a history barrier on the leader (bulk load, compaction, recovery)
  triggers the snapshot-reseed fallback instead of an error, and the
  reseed converges by diffing rather than reloading.
"""

import os

import pytest

from repro.engine import connect
from repro.engine.replication import (
    FollowerSession,
    LeaderFeed,
    ReplicationError,
    TransientReplicationError,
)

BACKENDS = ("python", "columnar", "sharded")


class FlakyFeed:
    """Wraps a feed; every pull fails ``failures`` times first."""

    def __init__(self, feed, failures=0):
        self.feed = feed
        self.failures = failures
        self.calls = 0

    def handshake(self):
        return self.feed.handshake()

    def pull(self, stamps, dict_len):
        self.calls += 1
        if (self.calls - 1) % (self.failures + 1) < self.failures:
            raise TransientReplicationError("dropped connection")
        return self.feed.pull(stamps, dict_len)


def state(db):
    return {rel.name: set(map(tuple, rel)) for rel in db}


@pytest.mark.parametrize("backend", BACKENDS)
def test_follower_bootstraps_and_converges(backend):
    leader = connect(
        {"R": [(i, i + 1) for i in range(20)], "S": [(3, 7)]},
        backend=backend,
    )
    follower = FollowerSession(LeaderFeed(leader))
    assert follower.db.backend == backend
    assert state(follower.db) == state(leader.db)

    leader.add("R", (100, 101))
    leader.discard("R", (0, 1))
    leader.add("S", (9, 9))
    summary = follower.sync()
    assert summary["applied"] + summary["reseeded"] == 2
    assert state(follower.db) == state(leader.db)

    # idempotent when nothing changed
    follower.sync()
    assert state(follower.db) == state(leader.db)


def test_follower_prepared_queries_stay_live():
    leader = connect(
        {"R": [(1, 2), (2, 3)], "S": [(2, 9)]}, backend="columnar"
    )
    follower = FollowerSession(LeaderFeed(leader))
    answers = follower.prepare("q(x) :- R(x, y), S(y, z)").run()
    assert set(map(tuple, answers)) == {(1,)}
    leader.add("R", (7, 2))
    leader.add("S", (3, 0))
    follower.sync()
    assert set(map(tuple, answers)) == {(1,), (2,), (7,)}


def test_new_leader_relation_reaches_the_follower():
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    follower = FollowerSession(LeaderFeed(leader))
    leader.add("New", (5, 6))  # created after the handshake
    follower.sync()
    assert state(follower.db) == state(leader.db)


def test_reseed_after_leader_barrier():
    leader = connect({"R": [(1, 2), (2, 3)]}, backend="columnar")
    follower = FollowerSession(LeaderFeed(leader))
    live = follower.prepare("q(x, y) :- R(x, y)").run()
    # bulk load + compaction: a history barrier — the follower's
    # stamp now predates the leader's truncation point
    leader.db["R"].add_all([(i, 0) for i in range(200)])
    leader.db["R"].discard((1, 2))
    leader.db["R"].compact()
    summary = follower.sync()
    assert summary["reseeded"] == 1
    assert state(follower.db) == state(leader.db)
    assert len(live) == len(leader.db["R"])
    # the next pull is a plain delta again
    leader.add("R", (999, 999))
    assert follower.sync() == {"applied": 1, "reseeded": 0}
    assert state(follower.db) == state(leader.db)


def test_python_backend_always_reseeds_and_still_converges():
    leader = connect({"R": [(1, 2)]}, backend="python")
    follower = FollowerSession(LeaderFeed(leader))
    leader.add("R", (3, 4))  # every python mutation is a barrier
    summary = follower.sync()
    assert summary["reseeded"] == 1
    assert state(follower.db) == state(leader.db)


def test_transient_failures_retry_with_exponential_backoff():
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    flaky = FlakyFeed(LeaderFeed(leader), failures=3)
    sleeps = []
    follower = FollowerSession(
        flaky, retries=5, backoff=0.01, sleep=sleeps.append
    )
    leader.add("R", (9, 9))
    follower.sync()
    assert state(follower.db) == state(leader.db)
    assert sleeps == [0.01, 0.02, 0.04]  # doubling per attempt


def test_retries_exhausted_raises_terminal_error():
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    flaky = FlakyFeed(LeaderFeed(leader), failures=10)
    follower = FollowerSession(
        flaky, retries=3, backoff=0.0, sleep=lambda s: None
    )
    with pytest.raises(ReplicationError) as excinfo:
        follower.sync()
    assert "after 3 attempts" in str(excinfo.value)
    assert not isinstance(excinfo.value, TransientReplicationError)


def test_time_budget_cuts_retries_short():
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    flaky = FlakyFeed(LeaderFeed(leader), failures=10)
    clock = {"now": 0.0}

    def fake_sleep(seconds):
        clock["now"] += seconds

    follower = FollowerSession(
        flaky,
        retries=50,
        backoff=1.0,
        timeout=2.5,
        sleep=fake_sleep,
        clock=lambda: clock["now"],
    )
    with pytest.raises(ReplicationError) as excinfo:
        follower.sync()
    assert "timed out" in str(excinfo.value)
    assert flaky.calls < 10  # the budget, not the retry cap, stopped it


def test_one_feed_serves_followers_at_different_positions():
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    feed = LeaderFeed(leader)
    early = FollowerSession(feed)
    leader.add("R", (3, 4))
    late = FollowerSession(feed)
    assert state(late.db) == state(leader.db)
    assert state(early.db) != state(leader.db)
    early.sync()
    assert state(early.db) == state(leader.db)


def test_durable_leader_feeds_a_follower(tmp_path):
    """The pieces compose: a recovered durable session can lead."""
    path = str(tmp_path / "leader")
    session = connect(path=path, backend="columnar")
    for i in range(10):
        session.add("R", (i, i + 1))
    session.checkpoint()
    session.db.close()

    recovered = connect(path=path)
    follower = FollowerSession(LeaderFeed(recovered))
    assert state(follower.db) == state(recovered.db)
    recovered.add("R", (99, 100))
    follower.sync()
    assert state(follower.db) == state(recovered.db)
    recovered.db.close()


# ----------------------------------------------------------------------
# WAL-file cold catch-up (PR 7)
# ----------------------------------------------------------------------
def test_catchup_from_wal_files_lands_stamp_exact(tmp_path):
    """A follower bootstrapped from the leader's durable files holds
    bit-identical content *and* stamps, so the first live sync pulls
    an exact delta — never a reseed."""
    path = str(tmp_path / "leader")
    leader = connect(path=path, backend="columnar", sync="always")
    for i in range(40):
        leader.add("R", (i, i + 1))
    leader.db.checkpoint()
    for i in range(40, 60):
        leader.add("R", (i, i + 1))
    leader.db.rotate_wal()  # a sealed current-epoch segment
    for i in range(60, 70):
        leader.add("R", (i, i + 1))
    leader.db.flush()

    follower = FollowerSession(
        LeaderFeed(leader), catchup_path=path, catchup_batch=16
    )
    assert state(follower.db) == state(leader.db)
    assert follower._leader_stamps == {
        rel.name: rel.mutation_stamp for rel in leader.db
    }
    # the handoff: one post-bootstrap op arrives as a plain delta
    leader.add("R", (999, 999))
    assert follower.sync() == {"applied": 1, "reseeded": 0}
    assert state(follower.db) == state(leader.db)
    leader.db.close()


def test_catchup_without_feed_is_file_only(tmp_path):
    path = str(tmp_path / "leader")
    leader = connect(path=path, backend="columnar", sync="always")
    leader.add("R", (1, 2))
    leader.db.flush()
    follower = FollowerSession(catchup_path=path)
    assert state(follower.db) == state(leader.db)
    with pytest.raises(ReplicationError):
        follower.sync()  # no live feed to hand off to
    leader.db.close()


def test_catchup_needs_a_source():
    with pytest.raises(ValueError):
        FollowerSession()


def test_catchup_requires_a_durable_directory(tmp_path):
    with pytest.raises(ReplicationError):
        FollowerSession(catchup_path=str(tmp_path / "nothing-here"))


def test_connect_builds_a_catchup_follower(tmp_path):
    """``connect(path=..., replica_of=feed)`` wires the path through
    as the catch-up source and the retry knobs onto the follower."""
    path = str(tmp_path / "leader")
    leader = connect(path=path, backend="columnar", sync="always")
    for i in range(10):
        leader.add("R", (i, i))
    leader.db.flush()

    flaky = FlakyFeed(LeaderFeed(leader), failures=2)
    follower = connect(
        path=path,
        replica_of=flaky,
        retries=4,
        backoff=0.0,
        small_delta=1,
    )
    assert isinstance(follower, FollowerSession)
    assert follower.retries == 4
    assert follower.small_delta == 1
    # bootstrap came from files: the flaky transport was never called
    assert flaky.calls == 0
    assert state(follower.db) == state(leader.db)
    leader.add("R", (77, 77))
    follower._sleep = lambda s: None
    assert follower.sync() == {"applied": 1, "reseeded": 0}
    assert state(follower.db) == state(leader.db)
    leader.db.close()


def test_catchup_ignores_a_torn_wal_tail(tmp_path):
    """File catch-up stops at the valid prefix; the live feed covers
    the rest — including whatever the torn record held."""
    path = str(tmp_path / "leader")
    leader = connect(path=path, backend="columnar", sync="always")
    for i in range(20):
        leader.add("R", (i, i))
    leader.db.flush()
    # a half-flushed record at the tail of the leader's active WAL,
    # as a copying follower might observe mid-append
    wal = os.path.join(path, "wal-0.log")
    with open(wal, "ab") as handle:
        handle.write(b"\xc4\x57\x03garbage")

    follower = FollowerSession(LeaderFeed(leader), catchup_path=path)
    # a (possibly empty) delta per relation — but never a reseed
    summary = follower.sync()
    assert summary == {"applied": 1, "reseeded": 0}
    assert state(follower.db) == state(leader.db)
    leader.db.close()


# ----------------------------------------------------------------------
# transport failure classification (PR 9)
# ----------------------------------------------------------------------
class RefusingFeed:
    """Raises raw connection errors (not pre-wrapped transients)."""

    def __init__(self, feed, refusals, exc=ConnectionRefusedError):
        self.feed = feed
        self.refusals = refusals
        self.exc = exc
        self.calls = 0

    def handshake(self):
        return self.feed.handshake()

    def pull(self, stamps, dict_len):
        self.calls += 1
        if self.calls <= self.refusals:
            raise self.exc("connection refused")
        return self.feed.pull(stamps, dict_len)


class CorruptingFeed:
    """Returns structurally broken payloads (missing required keys)."""

    def __init__(self, feed):
        self.feed = feed
        self.calls = 0

    def handshake(self):
        return self.feed.handshake()

    def pull(self, stamps, dict_len):
        self.calls += 1
        payload = self.feed.pull(stamps, dict_len)
        for entry in payload["relations"]:
            entry.pop("stamp", None)  # every mode requires it
        return payload


@pytest.mark.parametrize(
    "exc", (ConnectionRefusedError, ConnectionResetError, TimeoutError)
)
def test_raw_connection_errors_are_retried_as_transient(exc):
    """A transport needn't pre-classify: refused/reset/timeout retry."""
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    refusing = RefusingFeed(LeaderFeed(leader), refusals=2, exc=exc)
    sleeps = []
    follower = FollowerSession(
        refusing, retries=5, backoff=0.01, sleep=sleeps.append
    )
    leader.add("R", (5, 5))
    follower.sync()
    assert state(follower.db) == state(leader.db)
    assert sleeps == [0.01, 0.02]  # two refusals, two backoffs
    assert refusing.calls == 3


def test_raw_connection_errors_exhaust_into_terminal_error():
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    refusing = RefusingFeed(LeaderFeed(leader), refusals=99)
    follower = FollowerSession(
        refusing, retries=3, backoff=0.0, sleep=lambda s: None
    )
    with pytest.raises(ReplicationError) as excinfo:
        follower.sync()
    assert not isinstance(excinfo.value, TransientReplicationError)
    assert refusing.calls == 3


def test_corrupt_payload_is_fatal_without_retry():
    """A payload that decodes but cannot apply must NOT be retried:
    re-pulling the same corrupt bytes cannot converge, and blind
    retries would mask real protocol bugs."""
    leader = connect({"R": [(1, 2)]}, backend="columnar")
    corrupting = CorruptingFeed(LeaderFeed(leader))
    follower = FollowerSession(
        corrupting, retries=5, backoff=0.01, sleep=lambda s: None
    )
    leader.add("R", (9, 9))
    with pytest.raises(ReplicationError) as excinfo:
        follower.sync()
    assert "corrupt" in str(excinfo.value)
    assert not isinstance(excinfo.value, TransientReplicationError)
    assert corrupting.calls == 1  # no retry on fatal classification
