"""Parser tests."""

import pytest

from repro.query.parser import QueryParseError, parse_query


def test_parse_basic():
    q = parse_query("q(x, y) :- R(x, z), S(z, y)")
    assert q.name == "q"
    assert q.head == ("x", "y")
    assert [a.relation for a in q.atoms] == ["R", "S"]
    assert q.atoms[0].variables == ("x", "z")


def test_parse_boolean_head():
    q = parse_query("q() :- R(x, y)")
    assert q.is_boolean()


def test_parse_self_joins():
    q = parse_query("q() :- R(x, y), R(y, z), R(z, x)")
    assert not q.is_self_join_free()
    assert len(q.atoms) == 3


def test_parse_whitespace_insensitive():
    q = parse_query("  q ( x )  :-   R ( x , y )  ")
    assert q.head == ("x",)


def test_parse_unary_atom():
    q = parse_query("q(x) :- R(x), S(x, x)")
    assert q.atoms[0].arity == 1
    assert q.atoms[1].has_repeated_variables()


def test_parse_missing_turnstile():
    with pytest.raises(QueryParseError):
        parse_query("q(x) R(x, y)")


def test_parse_empty_body():
    with pytest.raises(QueryParseError):
        parse_query("q(x) :- ")


def test_parse_atom_without_variables():
    with pytest.raises(QueryParseError):
        parse_query("q() :- R()")


def test_parse_malformed_head():
    with pytest.raises(QueryParseError):
        parse_query("q(x :- R(x, y)")


def test_parse_unbalanced_parens():
    with pytest.raises(QueryParseError):
        parse_query("q(x) :- R(x, y)), S(y)")


def test_parse_bad_variable():
    with pytest.raises(QueryParseError):
        parse_query("q(x) :- R(x, 12)")


def test_parse_unsafe_head_rejected():
    with pytest.raises(ValueError):
        parse_query("q(w) :- R(x, y)")


def test_parse_roundtrip_through_str():
    text = "q(x, y) :- R(x, z), S(z, y)"
    q = parse_query(text)
    assert parse_query(str(q)) == q
