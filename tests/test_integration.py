"""Cross-module integration scenarios.

These mirror the examples and the benchmark pipelines: classifier
verdicts must agree with the actual behaviour of the algorithms, and
the reductions must compose with the evaluation stack end to end.
"""

import pytest

from repro import (
    ConstantDelayEnumerator,
    LexDirectAccess,
    classify,
    count_answers,
    parse_query,
)
from repro.counting import count_free_connex
from repro.enumeration import measure_delays
from repro.joins import generic_join, yannakakis_boolean
from repro.query import catalog
from repro.reductions import TriangleToCyclicCQ, example_5cycle_embedding
from repro.semiring import COUNTING, aggregate_acyclic
from repro.solvers import has_triangle_naive
from repro.workloads import random_database, triangle_free_graph


def test_classifier_verdicts_match_algorithm_behaviour():
    """If the classifier says tractable, the fast path must accept the
    query; if hard, the strict constructors must refuse it."""
    cases = [
        catalog.path_query(2),
        catalog.free_connex_pair()[0],
        catalog.free_connex_pair()[1],
        catalog.star_query_sjf(2),
        catalog.star_query_full(3),
    ]
    for query in cases:
        report = classify(query)
        db = random_database(query, 25, 5, seed=hash(query.name) % 1000)
        if report.verdict("enumeration").tractable:
            produced = set(ConstantDelayEnumerator(query, db))
            assert produced == query.evaluate_brute_force(db)
        else:
            with pytest.raises(ValueError):
                ConstantDelayEnumerator(query, db)
        if report.verdict("counting").tractable and not query.is_boolean():
            assert count_free_connex(query, db) == query.count_brute_force(db)


def test_all_evaluators_agree_on_one_query():
    query = catalog.star_query_full(2, self_join_free=True)
    db = random_database(query, 60, 6, seed=77)
    brute = query.evaluate_brute_force(db)
    assert generic_join(query, db) == brute
    from repro.joins import yannakakis_full

    assert yannakakis_full(query, db).to_tuples(query.head) == brute
    assert count_answers(query, db) == len(brute)
    assert aggregate_acyclic(query, db, COUNTING) == len(brute)
    assert set(ConstantDelayEnumerator(query, db)) == brute
    accessor = LexDirectAccess(query, db, order=("z", "x1", "x2"))
    assert set(accessor.materialize()) == brute


def test_reduction_feeds_fast_evaluator():
    """Prop 3.3 composed with Yannakakis-refuted: the cyclic target
    needs the WCOJ evaluator; and its Boolean answer matches the
    triangle solver."""
    graph = triangle_free_graph(24, 50, seed=5, plant_triangle=True)
    target = catalog.cycle_query(4, boolean=True)
    reduction = TriangleToCyclicCQ(target)
    db = reduction.build_database(graph)
    from repro.joins import generic_join_boolean

    assert generic_join_boolean(target, db) == has_triangle_naive(graph)


def test_embedding_power_matches_agm_on_cycle():
    """For the 5-cycle, the K5 embedding certifies exponent 5/4 —
    below the AGM exponent 5/2, as expected for a lower bound vs an
    upper bound."""
    from repro.hypergraph import agm_exponent

    embedding = example_5cycle_embedding()
    rho = agm_exponent(embedding.query.hypergraph())
    assert embedding.power_lower_bound() <= rho


def test_delay_profile_on_tractable_vs_fallback():
    fc, nfc = catalog.free_connex_pair()
    db = random_database(fc, 150, 10, seed=88)
    fast = measure_delays(lambda: ConstantDelayEnumerator(fc, db), limit=100)
    slow = measure_delays(
        lambda: ConstantDelayEnumerator(nfc, db, strict=False), limit=100
    )
    assert fast.answers > 0 and slow.answers > 0
    # Not a performance assertion (too flaky at this scale) — just that
    # both pipelines produce instrumented profiles.
    assert fast.max_delay >= 0 and slow.preprocessing_seconds >= 0


def test_quickstart_snippet_from_readme():
    query = parse_query("q(x1, x2) :- R1(x1, z), R2(x2, z)")
    report = classify(query)
    assert not report.free_connex
    assert not report.verdict("enumeration").tractable


def test_boolean_pipeline_linear_vs_generic():
    query = catalog.path_query(3, boolean=True)
    for seed in range(4):
        db = random_database(query, 15, 8, seed=seed)
        assert yannakakis_boolean(query, db) == query.holds(db)
