"""Shared hypothesis strategies and instance builders for the tests.

The property tests compare every fast algorithm against the
brute-force reference on randomly generated queries and databases, so
the strategies here are the backbone of the suite.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.relation import Relation
from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery

VARIABLE_POOL = ["a", "b", "c", "d", "e", "f"]


@st.composite
def atoms(draw, max_arity: int = 3) -> Atom:
    arity = draw(st.integers(min_value=1, max_value=max_arity))
    variables = draw(
        st.lists(
            st.sampled_from(VARIABLE_POOL),
            min_size=arity,
            max_size=arity,
        )
    )
    name = draw(
        st.sampled_from(["R", "S", "T", "U", "V", "W"])
    )
    return Atom(name, tuple(variables))


@st.composite
def conjunctive_queries(
    draw,
    max_atoms: int = 4,
    max_arity: int = 3,
    self_join_free: bool = True,
) -> ConjunctiveQuery:
    """Random safe conjunctive queries over a small variable pool."""
    count = draw(st.integers(min_value=1, max_value=max_atoms))
    body: List[Atom] = []
    symbol_arity = {}
    for i in range(count):
        atom = draw(atoms(max_arity=max_arity))
        if self_join_free:
            atom = Atom(f"{atom.relation}{i}", atom.variables)
        elif symbol_arity.get(atom.relation, atom.arity) != atom.arity:
            # Self-joins require consistent arity per symbol; suffix
            # the arity to keep the draw instead of resampling.
            atom = Atom(f"{atom.relation}_{atom.arity}", atom.variables)
        symbol_arity.setdefault(atom.relation, atom.arity)
        body.append(atom)
    variables = sorted({v for atom in body for v in atom.scope})
    head_size = draw(st.integers(min_value=0, max_value=len(variables)))
    head = tuple(draw(st.permutations(variables))[:head_size])
    return ConjunctiveQuery(head, tuple(body), name="q_random")


@st.composite
def join_queries(draw, max_atoms: int = 4, max_arity: int = 3) -> ConjunctiveQuery:
    """Random self-join-free join queries (all variables free)."""
    query = draw(
        conjunctive_queries(max_atoms=max_atoms, max_arity=max_arity)
    )
    return query.as_join_query()


def random_database_for(
    query: ConjunctiveQuery,
    tuples_per_relation: int,
    domain_size: int,
    seed: int,
) -> Database:
    """A deterministic random database for a query (no hypothesis)."""
    rng = random.Random(seed)
    db = Database()
    for symbol in query.relation_symbols:
        arity = next(
            a.arity for a in query.atoms if a.relation == symbol
        )
        rel = Relation(symbol, arity)
        for _ in range(tuples_per_relation):
            rel.add(
                tuple(rng.randrange(domain_size) for _ in range(arity))
            )
        db.add_relation(rel)
    return db


@st.composite
def databases_for(draw, query: ConjunctiveQuery, max_tuples: int = 25):
    """A hypothesis-drawn database for a fixed query."""
    db = Database()
    domain = st.integers(min_value=0, max_value=5)
    for symbol in query.relation_symbols:
        arity = next(
            a.arity for a in query.atoms if a.relation == symbol
        )
        rows = draw(
            st.lists(
                st.tuples(*([domain] * arity)),
                min_size=0,
                max_size=max_tuples,
            )
        )
        db.add_relation(Relation(symbol, arity, rows))
    return db


@st.composite
def queries_with_databases(
    draw,
    max_atoms: int = 4,
    max_arity: int = 3,
    self_join_free: bool = True,
    max_tuples: int = 25,
) -> Tuple[ConjunctiveQuery, Database]:
    query = draw(
        conjunctive_queries(
            max_atoms=max_atoms,
            max_arity=max_arity,
            self_join_free=self_join_free,
        )
    )
    db = draw(databases_for(query, max_tuples=max_tuples))
    return query, db


@st.composite
def acyclic_hypergraph_edges(draw, max_vertices: int = 7):
    """Edges of a random acyclic hypergraph, built via a random
    join-tree shape (guaranteed acyclic by construction)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    vertices = [f"v{i}" for i in range(n)]
    edge_count = draw(st.integers(min_value=1, max_value=5))
    edges = []
    used: set = set()
    for index in range(edge_count):
        if not edges:
            size = draw(st.integers(min_value=1, max_value=min(3, n)))
            first = frozenset(draw(st.permutations(vertices))[:size])
            edges.append(first)
            used |= first
            continue
        # Attach to one parent edge: separator ⊆ parent plus vertices
        # never used before — a GYO ear, so acyclicity is preserved.
        parent = edges[draw(st.integers(0, len(edges) - 1))]
        shared_size = draw(st.integers(0, len(parent)))
        shared = list(draw(st.permutations(sorted(parent))))[:shared_size]
        fresh_pool = [v for v in vertices if v not in used]
        fresh_count = draw(st.integers(0, min(2, len(fresh_pool))))
        fresh = (
            list(draw(st.permutations(fresh_pool)))[:fresh_count]
            if fresh_pool
            else []
        )
        edge = frozenset(shared) | frozenset(fresh)
        if edge:
            edges.append(edge)
            used |= edge
    return edges
