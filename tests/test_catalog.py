"""The catalog queries have exactly the structure the paper assigns."""

import pytest

from repro.hypergraph.freeconnex import is_free_connex
from repro.hypergraph.gyo import is_acyclic
from repro.query import catalog


def test_triangle_query_shape():
    q = catalog.triangle_query()
    assert q.is_boolean()
    assert q.is_self_join_free()
    assert not is_acyclic(q.hypergraph())
    join = catalog.triangle_query(boolean=False)
    assert join.is_join_query()


def test_cycle_queries_cyclic():
    for k in (3, 4, 5, 6):
        q = catalog.cycle_query(k)
        assert len(q.atoms) == k
        assert not is_acyclic(q.hypergraph()), k


def test_cycle_query_minimum_size():
    with pytest.raises(ValueError):
        catalog.cycle_query(2)


def test_path_queries_acyclic_free_connex():
    for k in (1, 2, 3, 4):
        q = catalog.path_query(k)
        assert is_acyclic(q.hypergraph())
        assert is_free_connex(q)  # join queries are free-connex


def test_star_query_self_joins_and_structure():
    q = catalog.star_query(3)
    assert not q.is_self_join_free()
    assert q.relation_symbols == ("R",)
    assert is_acyclic(q.hypergraph())
    assert not is_free_connex(q)


def test_star_query_k1_is_free_connex():
    # q*_1(x) :- R(x, z) is just a projection: tractable everywhere.
    assert is_free_connex(catalog.star_query(1))


def test_star_query_sjf():
    q = catalog.star_query_sjf(2)
    assert q.is_self_join_free()
    assert not is_free_connex(q)


def test_star_query_full_is_join_query():
    q = catalog.star_query_full(2)
    assert q.is_join_query()
    assert is_free_connex(q)
    sjf = catalog.star_query_full(2, self_join_free=True)
    assert sjf.is_self_join_free()


def test_loomis_whitney_structure():
    for k in (3, 4, 5):
        q = catalog.loomis_whitney_query(k)
        assert len(q.atoms) == k
        assert all(a.arity == k - 1 for a in q.atoms)
        assert not is_acyclic(q.hypergraph())


def test_loomis_whitney_3_is_triangle_shaped():
    q = catalog.loomis_whitney_query(3)
    scopes = {a.scope for a in q.atoms}
    assert scopes == {
        frozenset({"x1", "x2"}),
        frozenset({"x2", "x3"}),
        frozenset({"x1", "x3"}),
    }


def test_clique_query():
    q = catalog.clique_query(3)
    assert len(q.atoms) == 6  # ordered pairs
    assert q.relation_symbols == ("E",)
    assert not is_acyclic(q.hypergraph())


def test_matrix_multiplication_query_matches_star():
    q = catalog.matrix_multiplication_query()
    assert q.head == ("x", "y")
    assert not is_free_connex(q)


def test_free_connex_pair_sides():
    fc, nfc = catalog.free_connex_pair()
    assert is_free_connex(fc)
    assert not is_free_connex(nfc)
    assert fc.atoms == nfc.atoms


def test_disruptive_trio_query_has_trio():
    from repro.hypergraph.trios import has_disruptive_trio

    q = catalog.disruptive_trio_query()
    assert has_disruptive_trio(q, ("x1", "x2", "z"))
    assert not has_disruptive_trio(q, ("z", "x1", "x2"))


def test_semijoin_reducible_query_acyclic():
    q = catalog.semijoin_reducible_query()
    assert is_acyclic(q.hypergraph())


def test_catalog_validation_errors():
    with pytest.raises(ValueError):
        catalog.star_query(0)
    with pytest.raises(ValueError):
        catalog.loomis_whitney_query(2)
    with pytest.raises(ValueError):
        catalog.clique_query(1)
    with pytest.raises(ValueError):
        catalog.path_query(0)
