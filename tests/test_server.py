"""The HTTP query service, end-to-end over real sockets.

:mod:`repro.server` turns sessions into a multi-tenant network
service; everything pinned here runs against a live
:class:`~repro.server.app.ServerThread` on a loopback socket — no
mocked transports:

- tenant lifecycle: create/info/drop, isolation between tenants,
  LRU eviction of idle tenants (and durable tenants surviving
  eviction through their on-disk directory);
- the read surface: prepare → handle, paged reads, counts, and
  semiring aggregates agree with a brute-force oracle and with a
  local session over the same data;
- streamed NDJSON ingestion with read-your-writes (the response
  arrives only after every accepted update is applied);
- the SSE watch stream: a subscriber observes **every** change of a
  200-update stream exactly once, in order, with consecutive event
  ids — and cursors resume mid-stream;
- replication over the wire: ``connect(replica_of="http://...")``
  bootstraps a follower that converges stamp-exact, including under
  injected connection drops (the ``server.replica.drop`` fault
  point), while a missing database fails fast as a terminal error;
- the JSON error envelope: stable machine-readable codes for parse
  errors, missing tenants/handles, duplicate creation, bad updates.
"""

import asyncio
import itertools
import socket
import threading
import time
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.engine import connect
from repro.engine.replication import ReplicationError
from repro.server import ServerClient, ServerError, ServerThread
from repro.util import faultpoints


@contextmanager
def serving(**kwargs):
    kwargs.setdefault("flush_interval", 0.005)
    with ServerThread(**kwargs) as server:
        client = ServerClient(server.host, server.port)
        try:
            yield server, client
        finally:
            client.close()


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    yield
    faultpoints.reset()


def oracle_join(r_rows, s_rows):
    return sorted(
        {
            (x, y)
            for (x, z) in r_rows
            for (z2, y) in s_rows
            if z == z2
        }
    )


# ----------------------------------------------------------------------
# tenants
# ----------------------------------------------------------------------
def test_tenant_lifecycle_and_isolation():
    with serving(max_tenants=4) as (server, client):
        assert client.health()["ok"] is True
        client.create_db("alpha")
        client.create_db("beta")
        assert client.databases() == ["alpha", "beta"]

        # Same relation name, disjoint content per tenant.
        client.add("alpha", "E", [(1, 2)])
        client.add("beta", "E", [(10, 20), (30, 40)])
        qa = client.prepare("alpha", "q(x, y) :- E(x, y)")
        qb = client.prepare("beta", "q(x, y) :- E(x, y)")
        assert qa.page(0, 10) == [(1, 2)]
        assert qb.page(0, 10) == [(10, 20), (30, 40)]

        info = client.db_info("alpha")
        assert info["relations"]["E"]["size"] == 1
        assert info["handles"] == [qa.handle]

        client.drop_db("alpha")
        assert client.databases() == ["beta"]
        with pytest.raises(ServerError) as excinfo:
            qa.count()
        assert excinfo.value.code == "no_such_handle"


def test_duplicate_create_conflicts():
    with serving() as (server, client):
        client.create_db("dup")
        with pytest.raises(ServerError) as excinfo:
            client.create_db("dup")
        assert excinfo.value.status == 409
        assert excinfo.value.code == "db_exists"


def test_idle_tenants_evict_lru():
    with serving(max_tenants=2) as (server, client):
        client.create_db("a")
        client.create_db("b")
        client.db_info("a")  # a is now more recently used than b
        client.create_db("c")  # evicts b
        assert client.databases() == ["a", "c"]
        assert client.health()["evicted"] == 1
        with pytest.raises(ServerError) as excinfo:
            client.db_info("b")
        assert excinfo.value.code == "no_such_db"


def test_durable_tenant_survives_eviction(tmp_path):
    with serving(max_tenants=2, data_root=str(tmp_path)) as (
        server,
        client,
    ):
        client.create_db("keep", durable=True)
        client.add("keep", "R", [(1, 2), (3, 4)])
        client.create_db("x")
        client.create_db("y")  # evicts "keep" (LRU, idle)
        assert "keep" not in client.databases()
        # Re-creating the durable tenant recovers its directory —
        # eviction closed the session cleanly (WAL flushed).
        client.create_db("keep", durable=True)
        q = client.prepare("keep", "q(x, y) :- R(x, y)")
        assert q.page(0, 10) == [(1, 2), (3, 4)]


# ----------------------------------------------------------------------
# the read surface
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ("python", "columnar"))
def test_prepare_page_len_aggregate_match_oracle(backend):
    r_rows = [(i, i % 5) for i in range(40)]
    s_rows = [(j % 5, j) for j in range(40)]
    with serving() as (server, client):
        client.create_db("db", backend=backend)
        client.add("db", "R", r_rows)
        client.add("db", "S", s_rows)
        q = client.prepare(
            "db", "q(x, y) :- R(x, z), S(z, y)", backend=backend
        )
        assert q.info["backend"] == backend
        assert q.info["family"]
        expected = oracle_join(r_rows, s_rows)
        assert q.count() == len(expected)
        got = []
        for offset in range(0, q.count(), 7):
            got.extend(q.page(offset, 7))
        assert got == expected
        assert q.aggregate("counting") == len(expected)
        assert q.aggregate("boolean") is True


def test_prepare_is_idempotent_per_handle():
    with serving() as (server, client):
        client.create_db("db")
        first = client.prepare("db", "q(x) :- E(x, y)")
        again = client.prepare("db", "q(x) :- E(x, y)")
        assert first.handle == again.handle
        other = client.prepare("db", "q(y) :- E(x, y)")
        assert other.handle != first.handle


def test_min_plus_aggregate_over_the_wire():
    with serving() as (server, client):
        client.create_db("db")
        q = client.prepare(
            "db", "q(x, y) :- E(x, y)", semiring="min-plus"
        )
        assert q.aggregate() == float("inf")  # empty: the zero
        client.add("db", "E", [(1, 2), (3, 4)])
        assert q.aggregate() == 0  # each answer weighs the one (0)


def test_explain_round_trips():
    with serving() as (server, client):
        client.create_db("db")
        q = client.prepare("db", "q(x, y) :- R(x, z), S(z, y)")
        text = q.explain()
        assert "backend" in text or "family" in text or text


# ----------------------------------------------------------------------
# ingestion
# ----------------------------------------------------------------------
def test_update_stream_has_read_your_writes():
    with serving(flush_rows=16) as (server, client):
        client.create_db("db")
        q = client.prepare("db", "q(x) :- E(x, y)")
        summary = client.update_stream(
            "db",
            (
                {"relation": "E", "row": [i, i + 1]}
                for i in range(500)
            ),
        )
        assert summary["accepted"] == 500
        assert summary["applied_seq"] >= 500
        # The response means "applied": the very next read sees it.
        assert q.count() == 500


def test_update_stream_mixes_ops_in_order():
    with serving(flush_rows=4) as (server, client):
        client.create_db("db")
        q = client.prepare("db", "q(x, y) :- E(x, y)")
        records = [
            {"op": "add", "relation": "E", "row": [i, 0]}
            for i in range(10)
        ]
        records += [
            {"op": "discard", "relation": "E", "row": [i, 0]}
            for i in range(0, 10, 2)
        ]
        records += [{"op": "add", "relation": "E", "row": [99, 99]}]
        client.update_stream("db", records)
        assert q.page(0, 20) == [
            (1, 0),
            (3, 0),
            (5, 0),
            (7, 0),
            (9, 0),
            (99, 99),
        ]


# ----------------------------------------------------------------------
# SSE watch
# ----------------------------------------------------------------------
def test_watch_observes_every_change_exactly_once_in_order():
    updates = 200
    with serving(flush_rows=1) as (server, client):
        client.create_db("db")
        q = client.prepare("db", "q(x) :- E(x, y)")

        events = []
        ready = threading.Event()
        done = threading.Event()

        def subscribe():
            for event in q.watch(timeout=30):
                events.append(event)
                ready.set()
                if event.data["value"] >= updates:
                    break
            done.set()

        watcher = threading.Thread(target=subscribe, daemon=True)
        watcher.start()
        # The initial snapshot proves the subscription is live before
        # the update stream starts.
        assert ready.wait(10)
        client.add("db", "E", [(i, i + 1) for i in range(updates)])
        assert done.wait(60)

        values = [event.data["value"] for event in events]
        ids = [event.id for event in events]
        # Every change, exactly once, in order: the snapshot (0) then
        # each single-row batch's new count, consecutively numbered.
        assert values == list(range(updates + 1))
        assert ids == list(range(1, updates + 2))
        # Every change event names the relation that moved.
        assert all("E" in e.data["delta"] for e in events[1:])


def test_watch_deltas_carry_exact_counts_on_columnar():
    with serving(flush_rows=1) as (server, client):
        client.create_db("db", backend="columnar")
        q = client.prepare("db", "q(x) :- E(x, y)", backend="columnar")
        events = []
        done = threading.Event()

        def subscribe():
            for event in q.watch(timeout=10):
                events.append(event)
                if event.data["value"] >= 3:
                    break
            done.set()

        watcher = threading.Thread(target=subscribe, daemon=True)
        watcher.start()
        while not events:
            time.sleep(0.01)
        client.add("db", "E", [(i, i) for i in range(3)])
        assert done.wait(30)
        # Columnar relations keep exact history: each single-row batch
        # reports precisely one net insertion via delta_since.
        assert [e.data["delta"]["E"]["inserted"] for e in events[1:]] == [
            1,
            1,
            1,
        ]


def test_watch_cursor_resumes_after_seen_events():
    with serving(flush_rows=1) as (server, client):
        client.create_db("db")
        q = client.prepare("db", "q(x) :- E(x, y)")
        # First touch creates the hub (and its replay history).
        for event in q.watch(timeout=10):
            assert event.data["value"] == 0
            break
        client.add("db", "E", [(i, 0) for i in range(5)])

        # A fresh subscriber replays the full history from cursor 0...
        seen = []
        for event in q.watch(timeout=10):
            seen.append(event)
            if len(seen) == 3:
                break
        cursor = seen[-1].id

        # ...and a cursor resumes strictly after what was seen.
        resumed = []
        for event in q.watch(cursor=cursor, timeout=10):
            resumed.append(event)
            if event.data["value"] >= 5:
                break
        ids = [e.id for e in seen] + [e.id for e in resumed]
        assert ids == [1, 2, 3, 4, 5, 6]  # no gap, no replay
        assert resumed[-1].data["value"] == 5


# ----------------------------------------------------------------------
# replication over the wire
# ----------------------------------------------------------------------
def leader_state(server, name):
    session = server.server.registry._tenants[name].session
    return (
        {rel.name: sorted(map(tuple, rel)) for rel in session.db},
        {rel.name: rel.mutation_stamp for rel in session.db},
    )


def follower_state(follower):
    return (
        {rel.name: sorted(map(tuple, rel)) for rel in follower.db},
        {rel.name: rel.mutation_stamp for rel in follower.db},
    )


@pytest.mark.parametrize("backend", ("python", "columnar"))
def test_http_follower_bootstraps_and_converges(backend):
    with serving() as (server, client):
        client.create_db("lead", backend=backend)
        client.add("lead", "R", [(i, i + 1) for i in range(25)])
        follower = connect(replica_of=client.replica_url("lead"))
        assert follower_state(follower) == leader_state(server, "lead")

        client.add("lead", "R", [(100, 101)])
        client.discard("lead", "R", [(0, 1)])
        client.add("lead", "S", [(7, 7)])
        follower.sync()
        content, stamps = follower_state(follower)
        lead_content, lead_stamps = leader_state(server, "lead")
        assert content == lead_content
        assert stamps == lead_stamps  # stamp-exact, not just equal
        follower.close()


def test_http_follower_converges_under_injected_drops():
    with serving() as (server, client):
        client.create_db("lead", backend="columnar")
        client.add("lead", "R", [(i, i) for i in range(10)])
        # Drop the first replica request (the handshake) on the floor:
        # bootstrap itself must retry through the transient failure.
        faultpoints.arm("server.replica.drop", at=1)
        follower = connect(
            replica_of=client.replica_url("lead"),
            retries=6,
            backoff=0.01,
        )
        assert follower_state(follower) == leader_state(server, "lead")

        # Now drop two consecutive pulls mid-replication.
        client.add("lead", "R", [(50, 50)])
        faultpoints.arm("server.replica.drop", at=1)
        follower.sync()
        client.add("lead", "R", [(60, 60)])
        faultpoints.arm("server.replica.drop", at=1)
        follower.sync()
        assert follower_state(follower) == leader_state(server, "lead")
        assert faultpoints.hits("server.replica.drop") == 3
        follower.close()


def test_http_follower_missing_db_is_terminal():
    with serving() as (server, client):
        with pytest.raises(ReplicationError) as excinfo:
            connect(
                replica_of=client.replica_url("ghost"),
                retries=3,
                backoff=0.01,
            )
        assert "ghost" in str(excinfo.value)


def test_replica_url_parsing_rejects_junk():
    from repro.server import transport_for_url

    with pytest.raises(ValueError):
        transport_for_url("https://h:1/v1/replica/db")
    with pytest.raises(ValueError):
        transport_for_url("http://h:1/v2/replica/db")
    with pytest.raises(ValueError):
        transport_for_url("http://h/v1/replica/db")  # no port


# ----------------------------------------------------------------------
# the error envelope
# ----------------------------------------------------------------------
def test_error_envelope_codes():
    with serving() as (server, client):
        with pytest.raises(ServerError) as excinfo:
            client.db_info("nope")
        assert (excinfo.value.status, excinfo.value.code) == (
            404,
            "no_such_db",
        )

        client.create_db("db")
        with pytest.raises(ServerError) as excinfo:
            client.prepare("db", "q(x :- broken")
        assert (excinfo.value.status, excinfo.value.code) == (
            400,
            "parse_error",
        )

        with pytest.raises(ServerError) as excinfo:
            client.prepare("db", "q(x) :- E(x, y)", semiring="modular")
        assert excinfo.value.code == "bad_semiring"

        with pytest.raises(ServerError) as excinfo:
            client.create_db("bad$name")
        assert excinfo.value.code == "bad_db_name"

        with pytest.raises(ServerError) as excinfo:
            client.update_stream(
                "db", [{"relation": "E"}]  # no row
            )
        assert excinfo.value.code == "bad_update"

        with pytest.raises(ServerError) as excinfo:
            client.update_stream(
                "db",
                [{"op": "upsert", "relation": "E", "row": [1, 2]}],
            )
        assert excinfo.value.code == "bad_update"

        # The connection survives every one of those errors.
        assert client.health()["ok"] is True


def test_unknown_route_is_404():
    with serving() as (server, client):
        with pytest.raises(ServerError) as excinfo:
            client._json("GET", "/v1/nonsense")
        assert excinfo.value.code == "no_such_route"


# ----------------------------------------------------------------------
# hardening regressions
# ----------------------------------------------------------------------
def test_dot_only_db_names_rejected(tmp_path):
    # '.' and '..' pass the character-set check but would alias or
    # escape data_root as durable tenant directories.
    with serving(data_root=str(tmp_path)) as (server, client):
        for name in (".", ".."):
            with pytest.raises(ServerError) as excinfo:
                client.create_db(name, durable=True)
            assert excinfo.value.code == "bad_db_name"
        assert list(tmp_path.iterdir()) == []


def test_session_factory_pins_durable_paths_inside_data_root(tmp_path):
    # Belt and braces below the registry's name validation: a custom
    # registry must still not place a tenant outside data_root.
    from repro.server.http import HttpError
    from repro.server.tenants import default_session_factory

    with pytest.raises(HttpError) as excinfo:
        default_session_factory("..", {"durable": True}, str(tmp_path))
    assert excinfo.value.code == "bad_db_name"
    assert list(tmp_path.iterdir()) == []


def test_negative_content_length_rejected():
    # A negative length once reached reader.read(-N) — read-until-EOF
    # — hanging the keep-alive connection.
    with serving() as (server, client):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: -5\r\n"
                b"\r\n"
            )
            chunks = []
            while True:
                block = sock.recv(65536)
                if not block:
                    break
                chunks.append(block)
        data = b"".join(chunks)
        assert data.split(b"\r\n", 1)[0].endswith(b"400 Bad Request")
        assert b"bad_request" in data


def test_server_pool_is_not_the_shard_pool():
    # Regression: sharing one bounded pool between run_in_executor
    # dispatch and the shard fan-outs those calls make can deadlock
    # once every thread is an outer call waiting on an inner task.
    from repro.db.executor import executor_for

    with serving(workers=2) as (server, client):
        shard_pool = executor_for(2).stdlib_pool()
        assert server.server._pool is not shard_pool


def test_concurrent_reads_during_sharded_updates_do_not_deadlock():
    # The saturation scenario behind the dedicated server pool: a
    # sharded add_all holds the write lock and fans out per-shard work
    # while reader requests block on the same lock.  When the server
    # shared the 2-thread shard pool, the inner shard tasks queued
    # behind the blocked readers forever.
    from repro.server.client import RemoteQuery

    with serving(workers=2, flush_rows=8) as (server, client):
        client.create_db("db", backend="sharded", shard_count=4, workers=2)
        client.add("db", "E", [(i, i % 7) for i in range(64)])
        handle = client.prepare("db", "q(x, y) :- E(x, y)").handle
        errors = []
        done = threading.Event()

        def reads():
            reader = ServerClient(server.host, server.port)
            try:
                q = RemoteQuery(reader, {"handle": handle})
                while not done.is_set():
                    q.count()
                    q.page(0, 5)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
            finally:
                reader.close()

        readers = [
            threading.Thread(target=reads, daemon=True) for _ in range(4)
        ]
        for thread in readers:
            thread.start()
        try:
            for round_no in range(5):
                base = 200 + 64 * round_no
                client.add(
                    "db", "E", [(base + i, i) for i in range(64)]
                )
        finally:
            done.set()
        for thread in readers:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in readers)
        assert errors == []


def test_batcher_failure_wakes_blocked_producers():
    # A producer blocked in put() on a full queue must observe the
    # drainer's failure instead of waiting forever on a dead consumer.
    from repro.server.batcher import UpdateBatcher

    async def scenario():
        boom = RuntimeError("engine blew up")

        async def run_blocking(fn, *args):
            raise boom

        session = SimpleNamespace(
            add_all=lambda *args: None,
            discard_all=lambda *args: None,
        )
        batcher = UpdateBatcher(
            session,
            run_blocking,
            queue_size=1,
            flush_rows=1,
            flush_interval=0.01,
        )

        async def producer():
            for i in range(10):
                await batcher.put("add", "E", (i,))

        with pytest.raises(RuntimeError, match="engine blew up"):
            await asyncio.wait_for(producer(), timeout=10)

    asyncio.run(scenario())


def test_watch_hub_drops_overflowing_subscriber():
    # A stalled SSE consumer's queue is bounded: on overflow the hub
    # stops feeding it and appends the end-of-stream marker instead of
    # accumulating frames without bound.
    from repro.server.app import WatchHub

    class CountingAnswers:
        def __init__(self):
            self.calls = 0

        def count(self):
            self.calls += 1
            return self.calls

    served = SimpleNamespace(
        prepared=SimpleNamespace(
            query=SimpleNamespace(relation_symbols=()),
            semiring=None,
            database=[],
        ),
        answers=CountingAnswers(),
    )

    async def scenario():
        async def run_blocking(fn, *args):
            return fn(*args)

        hub = WatchHub(served)
        hub.QUEUE_LIMIT = 2
        replay, queue = hub.subscribe(0)
        assert replay == []
        for _ in range(5):
            await hub.notify(run_blocking)
        assert queue not in hub.queues  # dropped, no longer fed
        items = []
        while not queue.empty():
            items.append(queue.get_nowait())
        assert len(items) <= hub.QUEUE_LIMIT
        assert items[-1][0] is None  # the end-of-stream marker

    asyncio.run(scenario())
