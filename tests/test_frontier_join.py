"""Parity and guarantee tests for the frontier Generic Join and the
fused semiring kernels.

Three strategies must agree on every input: the breadth-first frontier
join (columnar/sharded backends), the legacy depth-first search
(``REPRO_FRONTIER=0``, and the only strategy on the python backend),
and the brute-force reference.  On top of parity, this file pins the
paths' guarantees: zero decodes up to the value boundary
(``decoded_row_count``), no full-frame aggregation intermediates in
the fused FAQ pipeline (``scratch_peak``), recursion-limit immunity of
the explicit-stack legacy path, statistics-aware variable orders, and
numpy/numba kernel agreement (skipped where numba is absent).
"""

import os
import sys

import numpy as np
import pytest
from hypothesis import given, settings

from repro.db import columnar
from repro.db.columnar import (
    decoded_row_count,
    fused_group_lookup,
    reset_decoded_row_count,
    reset_scratch_peak,
    scratch_peak,
)
from repro.db.database import Database
from repro.joins.generic_join import (
    _choose_order,
    generic_join,
    generic_join_boolean,
    generic_join_codes,
)
from repro.query.catalog import (
    clique_query,
    loomis_whitney_query,
    path_query,
    triangle_query,
)
from repro.query.parser import parse_query
from repro.semiring.faq import aggregate_acyclic, aggregate_generic
from repro.semiring.semirings import (
    BOOLEAN,
    COUNTING,
    MIN_PLUS,
    Semiring,
)
from repro.workloads.databases import agm_tight_triangle_db

from tests.strategies import queries_with_databases

SHARD_COUNTS = (1, 3)
WORKER_COUNTS = (1, 3)


def _recursive(monkeypatch):
    monkeypatch.setenv("REPRO_FRONTIER", "0")


# ----------------------------------------------------------------------
# parity: frontier == recursive == brute force, across backends
# ----------------------------------------------------------------------
@given(queries_with_databases())
@settings(max_examples=25)
def test_frontier_parity_random(query_db):
    query, db = query_db
    join_query = query.as_join_query()
    expected = join_query.evaluate_brute_force(db)
    columnar_db = db.to_backend("columnar")
    assert generic_join(join_query, columnar_db) == expected
    assert generic_join_boolean(query, columnar_db) == bool(expected)
    coded = generic_join_codes(join_query, columnar_db)
    assert coded is not None
    codes, head = coded
    assert head == tuple(join_query.head)
    decoded = set(columnar_db[query.atoms[0].relation].dictionary
                  .decode_rows(codes))
    assert decoded == expected


@given(queries_with_databases(max_atoms=3))
@settings(max_examples=10)
def test_frontier_parity_sharded(query_db):
    query, db = query_db
    join_query = query.as_join_query()
    expected = join_query.evaluate_brute_force(db)
    for shard_count in SHARD_COUNTS:
        for workers in WORKER_COUNTS:
            sharded = db.to_backend("sharded", shard_count=shard_count)
            sharded.configure_shard_runtime(workers=workers)
            assert generic_join(join_query, sharded) == expected


@given(queries_with_databases(max_atoms=3))
@settings(max_examples=10)
def test_frontier_matches_recursive(query_db):
    query, db = query_db
    join_query = query.as_join_query()
    columnar_db = db.to_backend("columnar")
    frontier = generic_join(join_query, columnar_db)
    os.environ["REPRO_FRONTIER"] = "0"
    try:
        assert generic_join(join_query, columnar_db) == frontier
    finally:
        del os.environ["REPRO_FRONTIER"]


def test_frontier_chunked_matches_serial(monkeypatch):
    # Big enough that the sharded run splits frontiers into chunks
    # through the executor; the merge must stay bit-identical.
    db = agm_tight_triangle_db(2000, backend="sharded")
    db.configure_shard_runtime(workers=3)
    query = triangle_query(boolean=False)
    chunked = generic_join(query, db)
    serial = generic_join(query, db.to_backend("columnar"))
    assert chunked == serial
    _recursive(monkeypatch)
    assert generic_join(query, db) == chunked


# ----------------------------------------------------------------------
# edge cases: empty relations, skew, dangling prefixes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["python", "columnar", "sharded"])
def test_empty_relation_kills_join(backend):
    query = triangle_query(boolean=False)
    db = Database.from_dict({"R1": [(1, 2)], "R3": [(3, 1)]})
    db.ensure_relation("R2", 2)  # present but empty
    db = db.to_backend(backend)
    assert generic_join(query, db) == set()
    assert not generic_join_boolean(triangle_query(), db)


@pytest.mark.parametrize("backend", ["columnar", "sharded"])
def test_heavy_skew_parity(backend):
    # One hub value with many neighbours next to a sparse remainder:
    # the frontier must expand unequal candidate ranges correctly.
    r1 = [(0, i) for i in range(50)] + [(i, i + 1) for i in range(1, 8)]
    r2 = [(i, 0) for i in range(50)] + [(i + 1, i) for i in range(1, 8)]
    r3 = [(0, 0)] + [(i, i) for i in range(1, 8)]
    db = Database.from_dict({"R1": r1, "R2": r2, "R3": r3})
    query = triangle_query(boolean=False)
    expected = query.evaluate_brute_force(db)
    assert expected  # the instance must actually contain triangles
    assert generic_join(query, db.to_backend(backend)) == expected


@pytest.mark.parametrize("backend", ["columnar", "sharded"])
def test_dangling_prefixes_die_per_level(backend):
    # Every R(a, b) prefix extends to some b, but only one b survives
    # S; dangling prefixes must die without producing answers.
    query = parse_query("q(a, b, c) :- R(a, b), S(b, c)")
    r = [(i, i % 10) for i in range(100)]
    s = [(7, 1), (7, 2)]
    db = Database.from_dict({"R": r, "S": s})
    expected = query.evaluate_brute_force(db)
    assert generic_join(query, db.to_backend(backend)) == expected


def test_limit_truncated_search_still_finds_witnesses():
    # The capped witness search truncates every level; asking for more
    # answers than the cap leaves must trigger the uncapped rerun.
    query = parse_query("q(a, b) :- R(a, b), S(a, b)")
    rows = [(i, j) for i in range(60) for j in range(60)]
    db = Database.from_dict({"R": rows, "S": rows}).to_backend("columnar")
    got = generic_join(query, db, limit=2000)
    assert len(got) == 2000
    assert got <= set(rows)


# ----------------------------------------------------------------------
# zero-decode and recursion-limit guarantees
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["columnar", "sharded"])
def test_codes_path_never_decodes(backend):
    db = agm_tight_triangle_db(300, backend=backend)
    query = triangle_query(boolean=False)
    reset_decoded_row_count()
    coded = generic_join_codes(query, db)
    assert coded is not None
    assert len(coded[0]) > 0
    assert decoded_row_count() == 0
    # Aggregation over the codes stays decode-free too.
    reset_decoded_row_count()
    count = aggregate_generic(query, db, COUNTING)
    assert count == len(coded[0])
    assert decoded_row_count() == 0


def test_codes_path_refuses_python_backend():
    db = agm_tight_triangle_db(50, backend="python")
    assert generic_join_codes(triangle_query(boolean=False), db) is None


def test_sixty_variable_chain_low_recursion_limit():
    # The legacy path is an explicit stack: a 60-variable chain order
    # must survive a recursion limit far below the variable count.
    query = path_query(60)
    db = Database()
    for atom in query.atoms:
        rel = db.ensure_relation(atom.relation, 2)
        rel.add((1, 2))
        rel.add((2, 1))
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(70)
    try:
        answers = generic_join(query, db)
    finally:
        sys.setrecursionlimit(limit)
    assert len(answers) == 2


def test_loomis_whitney_and_clique_parity(monkeypatch):
    lw = loomis_whitney_query(3, boolean=False)
    clique = clique_query(3)
    for query in (lw, clique):
        rows = [
            (i % 5, j % 5) for i in range(5) for j in range(5) if i != j
        ]
        db = Database.from_dict(
            {name: list(rows) for name in query.relation_symbols}
        )
        expected = query.evaluate_brute_force(db)
        assert expected
        got = generic_join(query, db.to_backend("columnar"))
        assert got == expected
        _recursive(monkeypatch)
        assert generic_join(query, db.to_backend("columnar")) == expected
        monkeypatch.delenv("REPRO_FRONTIER")


# ----------------------------------------------------------------------
# statistics-aware variable order
# ----------------------------------------------------------------------
def test_choose_order_breaks_ties_on_distinct_counts():
    query = triangle_query(boolean=False)
    # x and y appear in the same number of atoms; y's columns hold a
    # single distinct value, so with statistics y must come first.
    rows_xy = [(i, 0) for i in range(10)]
    rows_yz = [(0, i) for i in range(10)]
    rows_zx = [(i, j) for i in range(10) for j in range(10)]
    db = Database.from_dict(
        {"R1": rows_xy, "R2": rows_yz, "R3": rows_zx}
    ).to_backend("columnar")
    structural = _choose_order(query, None)
    measured = _choose_order(query, None, db)
    assert set(measured) == set(structural) == {"x", "y", "z"}
    assert measured[0] == "y"  # min distinct count wins the tie
    # Statistics must never change the *result*, only the order.
    assert generic_join(query, db) == query.evaluate_brute_force(
        db.to_backend("python")
    )


def test_explain_cites_measured_statistics():
    from repro.engine import Session

    session = Session(
        {"R": [(1, 2), (2, 3)], "S": [(2, 3)], "T": [(3, 1)]},
        backend="columnar",
    )
    text = session.prepare(
        "q(x, y, z) :- R(x, y), S(y, z), T(z, x)"
    ).explain()
    assert "stats:    R: rows=2 distinct=(2, 2)" in text
    assert "wcoj:     breadth-first frontier arrays" in text
    assert "kernels:" in text


# ----------------------------------------------------------------------
# fused FAQ pipeline: parity and peak-memory
# ----------------------------------------------------------------------
def _chain_db(n=200, keys=3):
    return Database.from_dict(
        {
            "R": [(i, i % keys) for i in range(n)],
            "S": [(i % keys, i) for i in range(n)],
        }
    ).to_backend("columnar")


CHAIN = parse_query("q(a, b, c) :- R(a, b), S(b, c)")

OBJECT_COUNTING = Semiring(
    name="counting-object",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
)


@pytest.mark.parametrize(
    "semiring", [COUNTING, MIN_PLUS, BOOLEAN, OBJECT_COUNTING]
)
def test_fused_matches_chained(semiring, monkeypatch):
    db = _chain_db()
    fused = aggregate_acyclic(CHAIN, db, semiring)
    monkeypatch.setenv("REPRO_FAQ_FUSED", "0")
    chained = aggregate_acyclic(CHAIN, db, semiring)
    assert fused == chained
    assert type(fused) is type(chained)


def test_fused_allocates_no_full_size_intermediate(monkeypatch):
    n = 200
    db = _chain_db(n=n)
    reset_scratch_peak()
    fused_total = aggregate_acyclic(CHAIN, db, COUNTING)
    fused_peak = scratch_peak()
    reset_scratch_peak()
    monkeypatch.setenv("REPRO_FAQ_FUSED", "0")
    chained_total = aggregate_acyclic(CHAIN, db, COUNTING)
    chained_peak = scratch_peak()
    assert fused_total == chained_total
    # The chained pipeline gathers one full-frame incoming column per
    # child; the fused pass materializes only the reduced message
    # (one entry per distinct separator key).
    assert chained_peak >= n
    assert fused_peak < n
    assert fused_peak < chained_peak


def test_fused_group_lookup_primitive_matches_chain():
    rng = np.random.default_rng(7)
    source_sub = rng.integers(0, 5, size=(40, 1)).astype(np.int64)
    source_values = rng.integers(1, 10, size=40).astype(np.int64)
    query_sub = rng.integers(0, 6, size=(25, 1)).astype(np.int64)
    target = rng.integers(1, 10, size=25).astype(np.int64)
    expected_target = target.copy()
    found = fused_group_lookup(
        source_sub,
        source_values,
        query_sub,
        cardinality=6,
        plus_ufunc=np.add,
        times_fn=np.multiply,
        target=target,
    )
    # Scalar reference: ⊕-sum per key, ⊗ into matching query rows.
    sums = {}
    for key, value in zip(source_sub[:, 0], source_values):
        sums[int(key)] = sums.get(int(key), 0) + int(value)
    for i, key in enumerate(query_sub[:, 0]):
        if int(key) in sums:
            assert found[i]
            expected_target[i] *= sums[int(key)]
        else:
            assert not found[i]
    np.testing.assert_array_equal(
        target[found], expected_target[found]
    )


# ----------------------------------------------------------------------
# compiled kernels: numpy/numba agreement, graceful absence
# ----------------------------------------------------------------------
def test_kernel_backend_reports_numpy_without_numba(monkeypatch):
    from repro.semiring import kernels

    if kernels.numba is not None:
        pytest.skip("numba installed; covered by the parity test")
    assert kernels.kernel_backend() == "numpy"
    assert COUNTING.fused_kernel() is None
    monkeypatch.setenv("REPRO_KERNELS", "numba")
    with pytest.raises(RuntimeError):
        kernels.kernel_backend()


@pytest.mark.parametrize("semiring", [COUNTING, MIN_PLUS, BOOLEAN])
def test_numba_kernels_match_numpy(semiring, monkeypatch):
    pytest.importorskip("numba")
    monkeypatch.setenv("REPRO_KERNELS", "numba")
    kernel = semiring.fused_kernel()
    assert kernel is not None
    db = _chain_db()
    compiled = aggregate_acyclic(CHAIN, db, semiring)
    monkeypatch.setenv("REPRO_KERNELS", "numpy")
    assert semiring.fused_kernel() is None
    plain = aggregate_acyclic(CHAIN, db, semiring)
    assert compiled == plain


def test_object_escape_hatch_ignores_kernels(monkeypatch):
    # Object-dtype semirings must never consult the compiled kernels.
    monkeypatch.setenv("REPRO_KERNELS", "numba")
    assert OBJECT_COUNTING.fused_kernel() is None


# ----------------------------------------------------------------------
# weighted aggregation over the codes path
# ----------------------------------------------------------------------
def test_weighted_aggregate_generic_codes_parity():
    from repro.semiring.faq import WeightedDatabase

    query = triangle_query(boolean=False)
    base = Database.from_dict(
        {
            "R1": [(1, 2), (2, 3)],
            "R2": [(2, 3), (3, 1)],
            "R3": [(3, 1), (1, 2)],
        }
    )
    expected_db = WeightedDatabase(base)
    expected_db.set_weight("R1", (1, 2), 5)
    weights = expected_db.atom_weight_fn(query, COUNTING)
    expected = aggregate_generic(query, base, COUNTING, weights)

    coded_base = base.to_backend("columnar")
    weighted = WeightedDatabase(coded_base)
    weighted.set_weight("R1", (1, 2), 5)
    coded_weights = weighted.atom_weight_fn(query, COUNTING)
    reset_decoded_row_count()
    got = aggregate_generic(query, coded_base, COUNTING, coded_weights)
    assert got == expected
    assert columnar.decoded_row_count() == 0
