"""Constant-delay enumeration (Theorem 3.17)."""

import pytest
from hypothesis import assume, given

from repro.db.database import Database
from repro.db.relation import Relation
from repro.enumeration import ConstantDelayEnumerator, measure_delays
from repro.hypergraph.freeconnex import is_free_connex
from repro.query import catalog, parse_query
from repro.workloads import random_database

from tests.strategies import queries_with_databases


@pytest.mark.parametrize(
    "text",
    [
        "q(x, y, z) :- R(x, y), S(y, z)",
        "q(x, y) :- R(x, y), S(y, z)",
        "q(x, y) :- R(x, y, a), S(a, b), T(b)",
        "q(x1, x2, z) :- R1(x1, z), R2(x2, z)",
    ],
)
def test_enumeration_complete_and_duplicate_free(text):
    query = parse_query(text)
    db = random_database(query, 50, 5, seed=81)
    produced = list(ConstantDelayEnumerator(query, db))
    assert len(produced) == len(set(produced))
    assert set(produced) == query.evaluate_brute_force(db)


def test_enumeration_deterministic_order():
    query = catalog.path_query(2)
    db = random_database(query, 40, 6, seed=82)
    first = list(ConstantDelayEnumerator(query, db))
    second = list(ConstantDelayEnumerator(query, db))
    assert first == second


def test_enumeration_strict_rejects_non_free_connex():
    _, nfc = catalog.free_connex_pair()
    db = random_database(nfc, 10, 4, seed=83)
    with pytest.raises(ValueError):
        ConstantDelayEnumerator(nfc, db)


def test_enumeration_fallback_still_correct():
    _, nfc = catalog.free_connex_pair()
    db = random_database(nfc, 30, 5, seed=84)
    enum = ConstantDelayEnumerator(nfc, db, strict=False)
    assert enum.mode == "materialized"
    assert set(enum) == nfc.evaluate_brute_force(db)


def test_enumeration_boolean_rejected():
    query = catalog.path_query(2, boolean=True)
    db = random_database(query, 5, 4, seed=85)
    with pytest.raises(ValueError):
        ConstantDelayEnumerator(query, db)


def test_enumeration_empty_result():
    query = parse_query("q(x) :- R(x, y), S(y)")
    db = Database()
    db.add_relation(Relation("R", 2, [(1, 2)]))
    db.add_relation(Relation("S", 1))
    assert list(ConstantDelayEnumerator(query, db)) == []


def test_enumeration_cross_product_streams():
    """Large outputs stream: grabbing a prefix must not require the
    whole result."""
    query = parse_query("q(x, y) :- R(x), S(y)")
    n = 300
    db = Database.from_dict(
        {"R": [(i,) for i in range(n)], "S": [(i,) for i in range(n)]}
    )
    enumerator = ConstantDelayEnumerator(query, db)
    prefix = []
    for answer in enumerator:
        prefix.append(answer)
        if len(prefix) == 10:
            break
    assert len(prefix) == 10
    assert enumerator.count_via_enumeration() == n * n


def test_enumeration_restartable():
    query = catalog.path_query(2)
    db = random_database(query, 25, 5, seed=86)
    enumerator = ConstantDelayEnumerator(query, db)
    assert list(enumerator) == list(enumerator)  # fresh iterator each time


@given(queries_with_databases(max_atoms=3, max_tuples=12))
def test_enumeration_property(query_db):
    query, db = query_db
    assume(query.head)
    assume(is_free_connex(query))
    produced = list(ConstantDelayEnumerator(query, db))
    assert len(produced) == len(set(produced))
    assert set(produced) == query.evaluate_brute_force(db)


def test_measure_delays_profile():
    query = catalog.path_query(2)
    db = random_database(query, 60, 6, seed=87)
    profile = measure_delays(
        lambda: ConstantDelayEnumerator(query, db), limit=50
    )
    assert profile.answers <= 50
    assert profile.preprocessing_seconds > 0
    assert profile.max_delay >= profile.mean_delay >= 0
    assert len(profile.delays) == profile.answers


def test_measure_delays_zero_answers():
    query = parse_query("q(x) :- R(x, y), S(y)")
    db = Database()
    db.add_relation(Relation("R", 2, [(1, 2)]))
    db.add_relation(Relation("S", 1))
    profile = measure_delays(lambda: ConstantDelayEnumerator(query, db))
    assert profile.answers == 0
    assert profile.max_delay == 0.0
