"""Planner fallback routing: the hard sides must degrade, not crash.

Non-free-connex queries route to materialize-then-serve with an
explicit "no constant-delay guarantee" note; inadmissible lexicographic
orders (disruptive trios) drop direct access to the sorted
materialization; and on random acyclic CQs the AnswerSet's paging is
byte-identical to the sorted materialized answers on both backends.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings

from repro.engine import Session
from repro.engine.planner import (
    ACYCLIC_MATERIALIZE,
    CYCLIC_MATERIALIZE,
    FREE_CONNEX,
    plan_query,
)
from repro.hypergraph.gyo import is_acyclic
from repro.query.parser import parse_query
from tests.strategies import queries_with_databases

BACKENDS = ("python", "columnar")


def test_non_free_connex_routes_to_materialize_with_note():
    query = parse_query("q(x, z) :- R(x, y), S(y, z)")
    plan = plan_query(query, size=10)
    assert plan.family == ACYCLIC_MATERIALIZE
    assert not plan.access_admissible
    assert "no constant-delay guarantee" in plan.route("iterate").note
    assert "no constant-delay guarantee" in plan.route("access").note
    assert "no constant-delay guarantee" in plan.render()
    assert plan.route("iterate").algorithm.startswith("materialize")


def test_cyclic_routes_to_generic_join_fallback():
    query = parse_query("q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
    plan = plan_query(query, size=10)
    assert plan.family == CYCLIC_MATERIALIZE
    assert not plan.access_admissible
    assert "worst-case-optimal" in plan.route("aggregate").algorithm
    assert "no constant-delay guarantee" in plan.route("iterate").note


def test_disruptive_trio_order_drops_direct_access_only():
    # (a, c, b) has the disruptive trio; the query itself stays
    # free-connex, so counting and enumeration keep their guarantees.
    query = parse_query("q(a, b, c) :- R(a, b), S(b, c)")
    plan = plan_query(query, size=10, order=("a", "c", "b"))
    assert plan.family == FREE_CONNEX
    assert not plan.access_admissible
    assert "disruptive trio" in plan.route("access").note
    assert plan.route("iterate").algorithm == "constant-delay enumeration"
    # The planner left alone picks an admissible order instead.
    free = plan_query(query, size=10)
    assert free.access_admissible


@pytest.mark.parametrize("backend", BACKENDS)
def test_materialize_families_serve_correct_pages(backend):
    for text in (
        "q(x, z) :- R(x, y), S(y, z)",
        "q(x, y, z) :- R(x, y), S(y, z), T(z, x)",
    ):
        query = parse_query(text)
        session = Session(
            {
                "R": [(1, 2), (2, 3), (4, 2), (3, 1)],
                "S": [(2, 3), (3, 1), (2, 1)],
                "T": [(3, 1), (1, 4), (1, 1)],
            },
            backend=backend,
        )
        answers = session.prepare(query, backend=backend).run()
        oracle = sorted(query.evaluate_brute_force(session.db))
        assert len(answers) == len(oracle)
        assert answers[:] == oracle
        assert list(answers) == oracle
        for i in range(len(oracle)):
            assert answers[i] == oracle[i]
        assert answers[1:3] == oracle[1:3]
        # Updates re-materialize instead of crashing or serving stale.
        session.add("R", (9, 2))
        session.add("S", (2, 7))
        oracle = sorted(query.evaluate_brute_force(session.db))
        assert answers[:] == oracle


def test_trio_order_pages_match_sorted_materialization():
    query = parse_query("q(a, b, c) :- R(a, b), S(b, c)")
    session = Session(
        {"R": [(1, 2), (2, 2), (0, 1)], "S": [(2, 0), (2, 5), (1, 9)]}
    )
    prepared = session.prepare(query, order=("a", "c", "b"))
    answers = prepared.run()
    oracle = sorted(
        query.evaluate_brute_force(session.db),
        key=lambda row: (row[0], row[2], row[1]),
    )
    assert answers[:] == oracle
    assert [answers[i] for i in range(len(oracle))] == oracle


@settings(max_examples=30, deadline=None)
@given(queries_with_databases(max_atoms=3, max_tuples=10))
def test_answer_set_paging_equals_sorted_materialization(query_db):
    """Acceptance: on random acyclic CQs, paging == sorted answers on
    both backends (whatever family the planner picked)."""
    query, db = query_db
    assume(not query.is_boolean())
    assume(is_acyclic(query.hypergraph()))
    brute = sorted(query.evaluate_brute_force(db))
    for backend in BACKENDS:
        session = Session(db.to_backend(backend))
        prepared = session.prepare(query, backend=backend)
        answers = prepared.run()
        positions = [query.head.index(v) for v in prepared.plan.order]
        oracle = sorted(
            brute,
            key=lambda row: tuple(row[p] for p in positions),
        )
        assert answers[:] == oracle
        assert answers[: len(oracle) // 2] == oracle[: len(oracle) // 2]
        for index in range(0, len(oracle), max(1, len(oracle) // 5)):
            assert answers[index] == oracle[index]
