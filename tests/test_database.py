"""Unit tests for the Database container."""

import pytest

from repro.db.database import Database
from repro.db.relation import Relation


def test_from_dict_infers_arity():
    db = Database.from_dict({"R": [(1, 2)], "S": [(1,)]})
    assert db["R"].arity == 2
    assert db["S"].arity == 1


def test_from_dict_rejects_empty_relation():
    with pytest.raises(ValueError):
        Database.from_dict({"R": []})


def test_duplicate_names_rejected():
    db = Database([Relation("R", 1)])
    with pytest.raises(ValueError):
        db.add_relation(Relation("R", 2))


def test_missing_relation_raises_keyerror():
    db = Database()
    with pytest.raises(KeyError):
        db["nope"]


def test_contains_and_len():
    db = Database([Relation("R", 1), Relation("S", 2)])
    assert "R" in db
    assert "missing" not in db
    assert len(db) == 2
    assert sorted(db.names()) == ["R", "S"]


def test_size_counts_all_tuples():
    db = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(1,)]})
    assert db.size() == 3


def test_active_domain_union():
    db = Database.from_dict({"R": [(1, 2)], "S": [(7,)]})
    assert db.active_domain() == {1, 2, 7}


def test_ensure_relation_creates_and_validates():
    db = Database()
    rel = db.ensure_relation("R", 2)
    assert rel.arity == 2
    assert db.ensure_relation("R", 2) is rel
    with pytest.raises(ValueError):
        db.ensure_relation("R", 3)


def test_copy_is_deep_for_rows():
    db = Database.from_dict({"R": [(1, 2)]})
    clone = db.copy()
    clone["R"].add((3, 4))
    assert len(db["R"]) == 1
    assert len(clone["R"]) == 2


def test_iteration_yields_relations():
    db = Database.from_dict({"R": [(1,)], "S": [(2,)]})
    names = {rel.name for rel in db}
    assert names == {"R", "S"}
