"""Hypergraph type + GYO acyclicity + join-tree tests."""

import pytest
from hypothesis import given

from repro.hypergraph.gyo import (
    cyclic_core,
    gyo_reduction,
    is_acyclic,
    join_tree,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.jointree import JoinTree
from repro.query import catalog

from tests.strategies import acyclic_hypergraph_edges


def hg(*edges):
    vertices = {v for e in edges for v in e}
    return Hypergraph(vertices, [frozenset(e) for e in edges])


def test_unknown_vertices_rejected():
    with pytest.raises(ValueError):
        Hypergraph({"a"}, [{"a", "b"}])


def test_basic_accessors():
    h = hg("ab", "bc", "ab")
    assert h.rank() == 2
    assert h.is_graph()
    assert len(h.distinct_edges) == 2
    assert h.degree("b") == 2
    assert h.edges_containing("a") == [0, 2]


def test_uniformity():
    assert hg("abc", "bcd").is_uniform(3)
    assert not hg("ab", "abc").is_uniform()
    assert Hypergraph((), ()).is_uniform()


def test_primal_graph():
    adj = hg("abc").primal_graph()
    assert adj["a"] == {"b", "c"}


def test_induced_drops_empty_intersections():
    h = hg("ab", "cd")
    induced = h.induced({"a", "b"})
    assert set(induced.edges) == {frozenset({"a", "b"})}


def test_remove_contained_edges():
    h = hg("ab", "abc", "c")
    reduced = h.remove_contained_edges()
    assert set(reduced.edges) == {frozenset("abc")}


def test_connected_components():
    h = hg("ab", "bc", "de")
    comps = h.connected_components()
    assert sorted(sorted(c) for c in comps) == [["a", "b", "c"], ["d", "e"]]
    assert not h.is_connected()


def test_with_extra_edge_and_empty_edge():
    h = hg("ab")
    extended = h.with_extra_edge({"a"})
    assert len(extended.edges) == 2
    same = h.with_extra_edge(())
    assert len(same.edges) == 1
    with pytest.raises(ValueError):
        h.with_extra_edge({"zz"})


# ---------------------------------------------------------------------
# GYO / acyclicity
# ---------------------------------------------------------------------

def test_paper_definition_examples():
    # Acyclic: paths, stars, single edges, alpha-acyclic classics.
    assert is_acyclic(hg("ab", "bc", "cd"))
    assert is_acyclic(hg("az", "bz", "cz"))
    assert is_acyclic(hg("abc"))
    assert is_acyclic(hg("abc", "bcd", "cde"))
    # The classic: a triangle plus its covering edge IS acyclic.
    assert is_acyclic(hg("ab", "bc", "ca", "abc"))
    # Cyclic: cycles and Loomis-Whitney shapes.
    assert not is_acyclic(hg("ab", "bc", "ca"))
    assert not is_acyclic(hg("ab", "bc", "cd", "da"))
    assert not is_acyclic(hg("abc", "abd", "acd", "bcd"))


def test_acyclicity_of_catalog():
    assert not is_acyclic(catalog.triangle_query().hypergraph())
    assert is_acyclic(catalog.path_query(5).hypergraph())
    assert is_acyclic(catalog.star_query(4).hypergraph())
    assert not is_acyclic(catalog.loomis_whitney_query(5).hypergraph())


def test_disconnected_hypergraph_acyclic():
    assert is_acyclic(hg("ab", "cd"))


def test_duplicate_edges_acyclic():
    assert is_acyclic(hg("ab", "ab", "ab"))


def test_join_tree_on_cyclic_raises():
    with pytest.raises(ValueError):
        join_tree(hg("ab", "bc", "ca"))


def test_join_tree_valid_on_examples():
    for edges in (
        ("ab", "bc", "cd"),
        ("az", "bz", "cz"),
        ("abc", "bcd", "ce"),
        ("ab", "cd"),  # forest
        ("ab", "ab"),  # duplicates
    ):
        tree = join_tree(hg(*edges))
        tree.validate()
        assert set(tree.nodes()) == set(range(len(edges)))


@given(acyclic_hypergraph_edges())
def test_generated_acyclic_hypergraphs_are_acyclic(edges):
    vertices = {v for e in edges for v in e}
    h = Hypergraph(vertices, edges)
    assert is_acyclic(h)
    tree = join_tree(h)
    tree.validate()


def test_gyo_trace_fields():
    result = gyo_reduction(hg("ab", "bc"))
    assert result.acyclic
    assert len(result.parent) == 1
    result2 = gyo_reduction(hg("ab", "bc", "ca"))
    assert not result2.acyclic
    assert result2.stuck_core


def test_cyclic_core_extraction():
    core = cyclic_core(hg("xa", "ab", "bc", "ca"))
    # The pendant edge xa is stripped; the triangle remains.
    assert set(core.edges) == {
        frozenset("ab"),
        frozenset("bc"),
        frozenset("ca"),
    }
    assert cyclic_core(hg("ab", "bc")).edges == ()


# ---------------------------------------------------------------------
# JoinTree structure
# ---------------------------------------------------------------------

def test_join_tree_rejects_unknown_parent():
    with pytest.raises(ValueError):
        JoinTree(bags={0: frozenset("ab")}, parent={0: 7})


def test_join_tree_rejects_cycle():
    with pytest.raises(ValueError):
        JoinTree(
            bags={0: frozenset("a"), 1: frozenset("a")},
            parent={0: 1, 1: 0},
        )


def test_bottom_up_children_before_parents():
    tree = join_tree(hg("ab", "bc", "cd"))
    order = list(tree.bottom_up())
    for child, parent in tree.parent.items():
        assert order.index(child) < order.index(parent)


def test_validate_detects_violation():
    bad = JoinTree(
        bags={
            0: frozenset("ax"),
            1: frozenset("b"),
            2: frozenset("ay"),
        },
        parent={0: 1, 2: 1},  # 'a' holders 0 and 2 disconnected via 1
    )
    with pytest.raises(ValueError):
        bad.validate()


def test_rooted_at_preserves_validity():
    tree = join_tree(hg("ab", "bc", "cd"))
    for node in tree.nodes():
        rerooted = tree.rooted_at(node)
        rerooted.validate()
        assert node in rerooted.roots


def test_separator():
    tree = join_tree(hg("ab", "bc"))
    (child, parent), = tree.edges()
    assert tree.separator(child) == frozenset("b")
    assert tree.separator(parent) == frozenset()


def test_subtree():
    tree = join_tree(hg("ab", "bc", "cd"))
    root = tree.roots[0]
    assert tree.subtree(root) == set(tree.nodes())
