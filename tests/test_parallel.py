"""Parallel shard execution: the ShardExecutor layer must be invisible.

The contract of :mod:`repro.db.executor` is *bit-identical* results:
dispatching per-shard work over a thread pool changes wall-clock time
and nothing else, because every fan-out collects its per-shard results
in shard-index order before merging.  This suite pins that contract —
executor mechanics (ordering, nesting, worker resolution), full query
parity serial vs. threaded across shard counts, the shard-by-shard
co-partitioned join path (zero build-side materialization), the
out-of-core spill pool (answers survive eviction and reload), and the
thread-safety of the process-global instrumentation counters the
worker threads now bump concurrently.
"""

import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting import count_answers
from repro.db import Database, ShardedColumnarRelation
from repro.db.columnar import (
    Dictionary,
    decoded_row_count,
    reset_decoded_row_count,
)
from repro.db.executor import (
    SERIAL,
    ParallelExecutor,
    SerialExecutor,
    WORKERS_ENV,
    executor_for,
    executor_of,
    get_default_executor,
    resolve_workers,
    set_default_executor,
)
from repro.db.sharded import (
    coalesced_row_peak,
    note_coalesce,
    reset_coalesced_row_peak,
)
from repro.db.spill import SpillPool
from repro.engine import connect
from repro.hypergraph.gyo import is_acyclic
from repro.joins import generic_join
from repro.joins.vectorized import ShardedColumnarFrame
from repro.semiring.faq import aggregate_acyclic
from repro.semiring.semirings import COUNTING, MIN_PLUS
from repro.util import faultpoints

from tests.strategies import queries_with_databases

WORKER_COUNTS = (1, 3, 7)  # serial, moderate, more workers than shards
SHARD_COUNTS = (1, 3)


# ----------------------------------------------------------------------
# executor mechanics
# ----------------------------------------------------------------------
def test_resolve_workers_precedence(monkeypatch):
    assert resolve_workers(5) == 5
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers() == 3
    assert resolve_workers(2) == 2  # explicit beats the environment
    monkeypatch.delenv(WORKERS_ENV)
    assert resolve_workers() == (os.cpu_count() or 1)
    # A malformed override falls back to the cpu count rather than
    # refusing to build a database.
    monkeypatch.setenv(WORKERS_ENV, "not-a-number")
    assert resolve_workers() == (os.cpu_count() or 1)
    assert resolve_workers(0) == 1  # floor at serial


def test_executor_for_degenerates_to_serial():
    assert executor_for(1) is SERIAL
    assert executor_for(0) is SERIAL
    four = executor_for(4)
    assert isinstance(four, ParallelExecutor) and four.workers == 4
    assert executor_for(4) is four  # shared pool per worker count
    assert not SERIAL.parallel and four.parallel


def test_parallel_map_preserves_item_order():
    executor = ParallelExecutor(3)
    items = list(range(50))
    assert executor.map(lambda i: i * i, items) == [i * i for i in items]
    assert executor.map(lambda i: i, []) == []


def test_nested_parallel_map_runs_inline():
    # A shard task that itself fans out (e.g. a frame operation inside
    # an aggregate) must not deadlock on the shared pool: nested maps
    # detect the worker thread and run serially inside it.
    executor = ParallelExecutor(2)

    def outer(i):
        return sum(executor.map(lambda j: i + j, range(5)))

    assert executor.map(outer, range(8)) == [5 * i + 10 for i in range(8)]


def test_default_executor_roundtrip():
    original = get_default_executor()
    try:
        set_default_executor(3)
        assert get_default_executor().workers == 3
        set_default_executor(None)  # back to env/cpu resolution
        assert get_default_executor().workers == resolve_workers()
        set_default_executor(SERIAL)
        assert isinstance(get_default_executor(), SerialExecutor)
    finally:
        set_default_executor(original)
    assert executor_of(object()) is get_default_executor()


# ----------------------------------------------------------------------
# query parity: threaded == serial, bit for bit
# ----------------------------------------------------------------------
@given(queries_with_databases())
@settings(max_examples=10, deadline=None)
def test_parallel_query_parity(query_db):
    query, db = query_db
    join_query = query.as_join_query()
    expected_count = count_answers(query, db)
    expected_join = set(generic_join(join_query, db))
    acyclic = is_acyclic(join_query.hypergraph())
    for shard_count in SHARD_COUNTS:
        serial_db = db.to_backend("sharded", shard_count=shard_count)
        baseline = {
            semiring: aggregate_acyclic(join_query, serial_db, semiring)
            for semiring in (COUNTING, MIN_PLUS)
        } if acyclic else {}
        for workers in WORKER_COUNTS:
            sharded = db.to_backend("sharded", shard_count=shard_count)
            sharded.configure_shard_runtime(workers=workers)
            assert count_answers(query, sharded) == expected_count
            assert set(generic_join(join_query, sharded)) == expected_join
            for semiring, expected in baseline.items():
                assert (
                    aggregate_acyclic(join_query, sharded, semiring)
                    == expected
                )


ops_streams = st.lists(
    st.tuples(
        st.booleans(),
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
    ),
    max_size=30,
)


@given(
    st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=25),
    ops_streams,
    st.sampled_from(SHARD_COUNTS),
    st.sampled_from(WORKER_COUNTS),
)
@settings(deadline=None)
def test_parallel_delta_since_parity(seed_rows, ops, shard_count, workers):
    from repro.db.interface import TruncatedHistoryError

    parallel = ShardedColumnarRelation(
        "R", 2, seed_rows, shard_count=shard_count,
        executor=executor_for(workers),
    )
    serial = ShardedColumnarRelation(
        "R", 2, seed_rows, shard_count=shard_count
    )
    stamp_par, stamp_ser = parallel.mutation_stamp, serial.mutation_stamp
    for is_add, row in ops:
        (parallel.add if is_add else parallel.discard)(row)
        (serial.add if is_add else serial.discard)(row)
    assert parallel.rows() == serial.rows()
    try:
        expected = serial.delta_since(stamp_ser)
    except TruncatedHistoryError:
        with pytest.raises(TruncatedHistoryError):
            parallel.delta_since(stamp_par)
        return
    inserted, deleted = parallel.delta_since(stamp_par)
    assert np.array_equal(inserted, expected[0])
    assert np.array_equal(deleted, expected[1])


def test_empty_shards_under_parallel_executor():
    # All rows share the key value: one hot shard, three empty ones.
    rows = [(7, i) for i in range(50)]
    rel = ShardedColumnarRelation(
        "R", 2, rows, shard_count=4, executor=executor_for(4)
    )
    assert sorted(rel.shard_sizes()) == [0, 0, 0, 50]
    assert rel.rows() == frozenset(rows)
    assert rel.project([1, 0]).rows() == frozenset(
        (b, a) for a, b in rows
    )


@given(queries_with_databases(max_atoms=3), ops_streams)
@settings(max_examples=8, deadline=None)
def test_parallel_session_update_stream_parity(query_db, ops):
    query, db = query_db
    if query.is_boolean() or not query.atoms:
        return
    arity = query.atoms[0].arity
    target = query.atoms[0].relation
    threaded = connect(db.to_backend("python"), workers=3)
    prepared = threaded.prepare(query, backend="sharded")
    oracle_session = connect(db.to_backend("python"))
    oracle = oracle_session.prepare(query, backend="python")
    answers, expected = prepared.run(), oracle.run()
    for is_add, row in ops:
        row = row[:arity] + (0,) * (arity - len(row))
        if is_add:
            threaded.add(target, row)
            oracle_session.add(target, row)
        else:
            threaded.discard(target, row)
            oracle_session.discard(target, row)
        assert len(answers) == len(expected)
    assert sorted(answers) == sorted(expected)


# ----------------------------------------------------------------------
# co-partitioned joins: shard i meets shard i, nothing is coalesced
# ----------------------------------------------------------------------
def _two_sharded(shard_count=4, workers=1):
    db = Database(
        backend="sharded", shard_count=shard_count, workers=workers
    )
    db.add_relation(
        db.new_relation("R", 2, [(i % 31, i % 13) for i in range(800)])
    )
    db.add_relation(
        db.new_relation("S", 2, [(i % 31, i % 17) for i in range(700)])
    )
    return db


def test_co_partitioned_join_parity_and_zero_coalesce():
    db = _two_sharded()
    # Both atoms put the partition variable (the key column's variable)
    # in position 0, so both frames are partitioned on "x".
    left = ShardedColumnarFrame.from_sharded_atom(db["R"], ("x", "y"))
    right = ShardedColumnarFrame.from_sharded_atom(db["S"], ("x", "z"))
    assert left._co_partitioned(right)
    oracle = set(left.to_plain().join(right.to_plain()).rows)
    reset_coalesced_row_peak()
    joined = left.join(right)
    assert coalesced_row_peak() == 0  # no build-side materialization
    assert set(joined.rows) == oracle
    reset_coalesced_row_peak()
    reduced = left.semijoin(right)
    assert coalesced_row_peak() == 0
    assert set(reduced.rows) == set(
        left.to_plain().semijoin(right.to_plain()).rows
    )


def test_broadcast_join_matches_co_partitioned():
    db = _two_sharded()
    left = ShardedColumnarFrame.from_sharded_atom(db["R"], ("x", "y"))
    right = ShardedColumnarFrame.from_sharded_atom(db["S"], ("x", "z"))
    # Projecting away nothing but *renaming* the partition variable on
    # one side breaks co-partitioning detection; the broadcast fallback
    # must produce the same rows (modulo the rename).
    renamed = right.rename({"x": "w"})
    assert not left._co_partitioned(renamed)
    broadcast = {
        tuple(row) for row in left.join(right.rename({"z": "z"})).rows
    }
    co_part = {tuple(row) for row in left.join(right).rows}
    assert broadcast == co_part


def test_co_partitioned_detection_requires_shared_layout():
    db = _two_sharded(shard_count=4)
    other_db = _two_sharded(shard_count=4)
    left = ShardedColumnarFrame.from_sharded_atom(db["R"], ("x", "y"))
    right = ShardedColumnarFrame.from_sharded_atom(db["S"], ("x", "z"))
    foreign = ShardedColumnarFrame.from_sharded_atom(
        other_db["S"], ("x", "z")
    )
    assert left._co_partitioned(right)
    assert not left._co_partitioned(foreign)  # different dictionary
    coarse = db["S"].copy()
    # Same dictionary but a different shard count after re-sharding.
    resharded = ShardedColumnarRelation(
        "S2", 2, coarse.rows(), dictionary=db["S"].dictionary,
        shard_count=2,
    )
    mismatch = ShardedColumnarFrame.from_sharded_atom(
        resharded, ("x", "z")
    )
    assert not left._co_partitioned(mismatch)


def test_parallel_co_partitioned_join_parity():
    serial = _two_sharded(workers=1)
    threaded = _two_sharded(workers=4)
    for db in (serial, threaded):
        frame_l = ShardedColumnarFrame.from_sharded_atom(
            db["R"], ("x", "y")
        )
        frame_r = ShardedColumnarFrame.from_sharded_atom(
            db["S"], ("x", "z")
        )
        db.joined = sorted(frame_l.join(frame_r).rows)
    assert serial.joined == threaded.joined


# ----------------------------------------------------------------------
# spillable shards: out-of-core code matrices
# ----------------------------------------------------------------------
def test_spilled_database_answers_the_full_query_suite(tmp_path):
    rows_r = [(i % 97, i % 13) for i in range(3000)]
    rows_s = [(i % 13, i % 41) for i in range(3000)]
    plain = Database.from_dict(
        {"R": rows_r, "S": rows_s}, backend="sharded", shard_count=4
    )
    spilled = Database.from_dict(
        {"R": rows_r, "S": rows_s},
        backend="sharded",
        shard_count=4,
        spill_dir=str(tmp_path),
        max_resident_shards=1,
    )
    # The budget is genuinely binding: most shards live on disk.
    assert spilled.spill.spilled_shards() >= 4
    assert spilled.spill.resident_shards() <= 1
    assert any(
        isinstance(shard._main, np.memmap)
        for rel in spilled
        for shard in rel.shards
    )
    from repro.query.parser import parse_query

    query = parse_query("q(x, y, z) :- R(x, y), S(y, z)")
    assert count_answers(query, spilled) == count_answers(query, plain)
    for semiring in (COUNTING, MIN_PLUS):
        assert aggregate_acyclic(
            query, spilled, semiring
        ) == aggregate_acyclic(query, plain, semiring)
    join_query = query.as_join_query()
    assert set(generic_join(join_query, spilled)) == set(
        generic_join(join_query, plain)
    )
    # Reads fault shards back in and evict others; the budget holds.
    assert spilled.spill.resident_shards() <= 1


def test_spilled_shards_accept_mutations(tmp_path):
    rel = ShardedColumnarRelation(
        "R", 2, [(i, i % 5) for i in range(500)], shard_count=4
    )
    pool = SpillPool(str(tmp_path), max_resident=1)
    rel.attach_spill(pool)
    oracle = set(rel.rows())
    assert pool.spilled_shards() >= 3
    for i in range(500, 600):
        rel.add((i, i % 5))
        oracle.add((i, i % 5))
    rel.discard((0, 0))
    oracle.discard((0, 0))
    rel.compact()
    assert rel.rows() == frozenset(oracle)
    assert pool.resident_shards() <= 1
    assert pool.spilled_bytes() > 0


def test_spill_files_survive_re_demote_without_rewrite(tmp_path):
    rel = ShardedColumnarRelation(
        "R", 2, [(i, i) for i in range(400)], shard_count=4
    )
    pool = SpillPool(str(tmp_path), max_resident=1)
    rel.attach_spill(pool)
    before = sorted(pool.spill_files())
    rel.rows()  # touch every shard: promote/demote churn
    rel.rows()
    after = sorted(pool.spill_files())
    # Clean shards re-demote by dropping the array, not re-saving it:
    # the same version-stamped files remain on disk.
    assert before and after
    assert set(after) >= set(before) or len(after) == len(before)
    assert rel.rows() == frozenset((i, i) for i in range(400))


def test_session_spill_knobs(tmp_path):
    rows = {"R": [(i % 50, i) for i in range(2000)]}
    session = connect(
        rows,
        backend="sharded",
        spill_dir=str(tmp_path),
        max_resident_shards=1,
    )
    assert session.db.spill is not None
    answers = session.execute("q(x, y) :- R(x, y)")
    assert len(answers) == 2000
    session.add("R", (999, 999999))
    assert len(answers) == 2001


# ----------------------------------------------------------------------
# thread-safety of the process-global counters
# ----------------------------------------------------------------------
def _hammer(fn, threads=8, repeats=200):
    barrier = threading.Barrier(threads)

    def run():
        barrier.wait()
        for _ in range(repeats):
            fn()

    pool = [threading.Thread(target=run) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()


def test_decoded_row_count_is_thread_safe():
    dictionary = Dictionary()
    codes = np.asarray(
        [[dictionary.encode(i)] for i in range(10)], dtype=np.int64
    )
    reset_decoded_row_count()
    _hammer(lambda: dictionary.decode_rows(codes))
    assert decoded_row_count() == 8 * 200 * 10


def test_coalesced_row_peak_is_thread_safe():
    reset_coalesced_row_peak()
    counter = iter(range(1, 8 * 200 + 1))
    lock = threading.Lock()

    def bump():
        with lock:
            value = next(counter)
        note_coalesce(value)

    _hammer(bump)
    assert coalesced_row_peak() == 8 * 200
    reset_coalesced_row_peak()
    assert coalesced_row_peak() == 0


def test_faultpoint_countdown_is_thread_safe():
    faultpoints.declare("test.parallel.crash", module="tests")
    total = 8 * 200
    faultpoints.reset()
    faultpoints.arm("test.parallel.crash", at=total)
    fired = []
    record = fired.append
    _hammer(
        lambda: record(1)
        if faultpoints.fires("test.parallel.crash")
        else None
    )
    # Exactly one visit saw the countdown expire, no double-fire, and
    # the hit counter agrees.
    assert sum(fired) == 1
    assert faultpoints.hits("test.parallel.crash") == 1
    assert not faultpoints.fires("test.parallel.crash")
    faultpoints.reset()


# ----------------------------------------------------------------------
# planner surface
# ----------------------------------------------------------------------
def test_explain_reports_executor_and_co_partitioning():
    rows = {"R": [(i % 23, i % 7) for i in range(300)],
            "S": [(i % 7, i % 5) for i in range(300)]}
    threaded = connect(rows, backend="sharded", workers=4)
    text = threaded.prepare("q(x, y, z) :- R(x, y), S(y, z)").explain()
    assert "threaded(4 workers)" in text
    assert "co-partitioned" in text
    serial = connect(rows, backend="sharded", workers=1)
    text = serial.prepare("q(x, y, z) :- R(x, y), S(y, z)").explain()
    assert "serial" in text
    plain = connect(rows, backend="python", workers=4)
    text = plain.prepare("q(x, y, z) :- R(x, y), S(y, z)").explain()
    assert "executor" not in text  # python backend: no shard fan-out


def test_plan_records_worker_count():
    rows = {"R": [(i % 23, i % 7) for i in range(300)]}
    session = connect(rows, backend="sharded", workers=3)
    plan = session.prepare("q(x, y) :- R(x, y)").plan
    assert plan.backend == "sharded" and plan.workers == 3
    oracle = connect(rows, backend="python")
    assert oracle.prepare("q(x, y) :- R(x, y)").plan.workers == 1
