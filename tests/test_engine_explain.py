"""Golden snapshots for ``PreparedQuery.explain()``.

One snapshot per pipeline family (boolean, count, enumeration + lex
direct access, inadmissible lex order, acyclic materialize, cyclic
fallback), asserting the rendered plan — chosen pipelines, execution
backend, and quoted theorems — is stable.  The plan is a pure function
of (query, order, backend, input size), so any diff here is a
deliberate planner change: update the snapshot *and* the CHANGES entry
together.

The fixture database has m=6 tuples; the ``count`` case leaves the
backend to the planner to pin the cutoff rationale text.
"""

import pytest

from repro.engine import Session

DATA = {"R": [(1, 2), (2, 3)], "S": [(2, 3), (3, 1)], "T": [(3, 1), (1, 2)]}


def render(text, backend=None, order=None):
    session = Session({name: list(rows) for name, rows in DATA.items()})
    return session.prepare(text, backend=backend, order=order).explain()


BOOLEAN = """\
plan for q() :- R(x, y), S(y, z)
  family:   boolean
  backend:  python (forced by caller)
  structure: acyclic=True free-connex=True self-join-free=True rho*=2.000
  stats:    R: rows=2
  stats:    S: rows=2
  decide    via Yannakakis semijoin reduction -- Õ(m) (Yannakakis) [Theorem 3.1 / 3.7]
  count     via decide, then 0/1 -- Õ(m) (counting = deciding for Boolean queries) [Theorem 3.1]
  updates:  session.add/discard bump mutation stamps; served structures refresh or recompute before answering"""

COUNT = """\
plan for q(x) :- R(x, y), S(y, z)
  family:   free-connex
  backend:  python (m=6 < cutoff 2048)
  structure: acyclic=True free-connex=True self-join-free=True rho*=2.000
  order:    x
  stats:    R: rows=2
  stats:    S: rows=2
  count     via free-connex FAQ message passing -- Õ(m) (free-connex counting) [Theorem 3.13]
  iterate   via constant-delay enumeration -- Õ(m) preprocessing + Õ(1) delay [Theorem 3.17]
  access    via lex direct access on (x) -- Õ(m) preprocessing + Õ(log m) per access [Theorem 3.24 / Corollary 3.22]
  aggregate via free-connex reduction + FAQ (unit weights) -- Õ(m) [Theorem 3.13 / Section 4.1.2]
  updates:  session.add/discard bump mutation stamps; served structures refresh or recompute before answering"""

ENUM_AND_LEX_DIRECT_ACCESS = """\
plan for q(a, b, c) :- R(a, b), S(b, c)
  family:   free-connex
  backend:  columnar (forced by caller)
  structure: acyclic=True free-connex=True self-join-free=True rho*=2.000
  order:    a > b > c
  stats:    R: rows=2
  stats:    S: rows=2
  kernels:  numpy: fused group-lookup via reduceat + searchsorted (numba not active)
  count     via FAQ message passing (counting semiring), incrementally maintained -- Õ(m) (free-connex counting) [Theorem 3.13]
  iterate   via constant-delay enumeration -- Õ(m) preprocessing + Õ(1) delay [Theorem 3.17]
  access    via lex direct access on (a > b > c) -- Õ(m) preprocessing + Õ(log m) per access [Theorem 3.24 / Corollary 3.22]
  aggregate via FAQ semiring message passing, incrementally maintained -- Õ(m) [Section 4.1.2 / [59]]
  updates:  session.add/discard fold delta messages into the maintained structures (O(depth) per tuple)"""

LEX_ORDER_WITH_DISRUPTIVE_TRIO = """\
plan for q(a, b, c) :- R(a, b), S(b, c)
  family:   free-connex
  backend:  python (forced by caller)
  structure: acyclic=True free-connex=True self-join-free=True rho*=2.000
  order:    a > c > b
  stats:    R: rows=2
  stats:    S: rows=2
  count     via free-connex FAQ message passing -- Õ(m) (free-connex counting) [Theorem 3.13]
  iterate   via constant-delay enumeration -- Õ(m) preprocessing + Õ(1) delay [Theorem 3.17]
  access    via materialize and sort -- O(output) preprocessing (sort), O(1) per access [Theorem 3.24 / Lemma 3.23]
              note: order (a > c > b) admits no layered join tree (disruptive trio); pages are served from the sorted materialization
  aggregate via FAQ semiring message passing -- Õ(m) [Section 4.1.2 / [59]]
  updates:  session.add/discard bump mutation stamps; served structures refresh or recompute before answering"""

ACYCLIC_MATERIALIZE = """\
plan for q(x, z) :- R(x, y), S(y, z)
  family:   acyclic-materialize
  backend:  python (forced by caller)
  structure: acyclic=True free-connex=False self-join-free=True rho*=2.000
  order:    x > z
  stats:    R: rows=2
  stats:    S: rows=2
  count     via materialize and count -- O(full-join size) (enumerate and count) [Theorem 3.12 / 3.13 / 4.6]
  iterate   via materialize, then stream in order -- materialize (full evaluation) [Theorem 3.16]
              note: no constant-delay guarantee: the query is not free-connex, so linear preprocessing with constant delay is ruled out on the hard side of the enumeration dichotomy
  access    via materialize and sort -- O(output) preprocessing (sort), O(1) per access [Theorem 3.18 / Corollary 3.22]
              note: no constant-delay guarantee: superlinear preprocessing is unavoidable for non-free-connex queries
  aggregate via fold over materialized answers (unit weights) -- O(full-join size) [Section 4.1.2]
              note: projected non-free-connex query: aggregate = fold of 1s
  updates:  session.add/discard bump mutation stamps; served structures refresh or recompute before answering"""

CYCLIC_FALLBACK = """\
plan for q(x, y, z) :- R(x, y), S(y, z), T(z, x)
  family:   cyclic-materialize
  backend:  python (forced by caller)
  structure: acyclic=False free-connex=False self-join-free=True rho*=1.500
  order:    x > y > z
  stats:    R: rows=2
  stats:    S: rows=2
  stats:    T: rows=2
  wcoj:     depth-first search over prefix tries (explicit stack; python backend)
  count     via materialize and count -- Õ(m^1.500) (worst-case-optimal join + count) [Theorem 3.13 (via Theorem 3.7)]
  iterate   via materialize, then stream in order -- materialize (full evaluation) [Theorem 3.14 / 4.5]
              note: no constant-delay guarantee: the query is not free-connex, so linear preprocessing with constant delay is ruled out on the hard side of the enumeration dichotomy
  access    via materialize and sort -- O(output) preprocessing (sort), O(1) per access [Theorem 3.18 / Corollary 3.22]
              note: no constant-delay guarantee: superlinear preprocessing is unavoidable for non-free-connex queries
  aggregate via worst-case-optimal join + fold -- Õ(m^1.500) [Section 4.1.2]
  updates:  session.add/discard bump mutation stamps; served structures refresh or recompute before answering"""


@pytest.mark.parametrize(
    "text, backend, order, expected",
    [
        pytest.param('q() :- R(x, y), S(y, z)', 'python', None, BOOLEAN, id='boolean'),
        pytest.param('q(x) :- R(x, y), S(y, z)', None, None, COUNT, id='count'),
        pytest.param('q(a, b, c) :- R(a, b), S(b, c)', 'columnar', None, ENUM_AND_LEX_DIRECT_ACCESS, id='enum_and_lex_direct_access'),
        pytest.param('q(a, b, c) :- R(a, b), S(b, c)', 'python', ('a', 'c', 'b'), LEX_ORDER_WITH_DISRUPTIVE_TRIO, id='lex_order_with_disruptive_trio'),
        pytest.param('q(x, z) :- R(x, y), S(y, z)', 'python', None, ACYCLIC_MATERIALIZE, id='acyclic_materialize'),
        pytest.param('q(x, y, z) :- R(x, y), S(y, z), T(z, x)', 'python', None, CYCLIC_FALLBACK, id='cyclic_fallback'),
    ],
)
def test_explain_golden(text, backend, order, expected):
    assert render(text, backend=backend, order=order) == expected
