"""Backend parity: the columnar (NumPy) backend must agree with the
Python backend — and with the brute-force oracle — everywhere.

Covers the tuple-store surface (`ColumnarRelation` vs `Relation`), the
frame algebra (`ColumnarFrame` vs `Frame`), and the full join stack
(binary plans, Generic Join, Yannakakis) on random queries/databases,
including empty relations, arity-0/1 relations and repeated-variable
atoms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    ColumnarRelation,
    Database,
    Dictionary,
    FrameAlgebra,
    Relation,
    TupleStore,
)
from repro.db.columnar import common_keys, match_pairs, pack_rows, unique_rows
from repro.hypergraph.gyo import join_tree
from repro.joins import (
    ColumnarFrame,
    Frame,
    generic_join,
    left_deep_plan_join,
    yannakakis_boolean,
    yannakakis_full,
    yannakakis_project,
)
from repro.joins.semijoin import atom_frames
from repro.query.atoms import Atom
from repro.query.cq import ConjunctiveQuery

from tests.strategies import conjunctive_queries, queries_with_databases

BACKENDS = ("python", "columnar")


def both_backends(db):
    """The same database in both backends (python first)."""
    return db.to_backend("python"), db.to_backend("columnar")


# ----------------------------------------------------------------------
# vectorized primitives
# ----------------------------------------------------------------------
rows_matrices = st.integers(min_value=0, max_value=40).flatmap(
    lambda n: st.integers(min_value=0, max_value=4).flatmap(
        lambda k: st.lists(
            st.tuples(*([st.integers(0, 9)] * k)),
            min_size=n,
            max_size=n,
        ).map(lambda rows: np.asarray(rows, dtype=np.int64).reshape(n, k))
    )
)


@given(rows_matrices)
def test_unique_rows_matches_set_semantics(codes):
    got = unique_rows(codes, 10)
    expected = {tuple(r) for r in codes.tolist()}
    assert {tuple(r) for r in got.tolist()} == expected
    assert len(got) == len(expected)


@given(rows_matrices, rows_matrices)
def test_common_keys_equal_iff_rows_equal(a, b):
    if a.shape[1] != b.shape[1]:
        b = b[:, : a.shape[1]] if b.shape[1] > a.shape[1] else b
        if a.shape[1] != b.shape[1]:
            a = a[:, : b.shape[1]]
    ka, kb = common_keys(a, b, 10)
    for i in range(min(len(a), 8)):
        for j in range(min(len(b), 8)):
            assert (ka[i] == kb[j]) == (
                tuple(a[i].tolist()) == tuple(b[j].tolist())
            )


def test_pack_rows_overflow_falls_back():
    # 5 columns × 2^13 codes = 65 bits > 63: must refuse to pack.
    wide = np.zeros((3, 5), dtype=np.int64)
    assert pack_rows(wide, 1 << 13) is None
    # The generic path still produces correct joint keys.
    ka, kb = common_keys(wide, wide[:2], 1 << 13)
    assert ka[0] == kb[0]


def test_match_pairs_enumerates_all_matches():
    left = np.asarray([3, 1, 3, 7], dtype=np.int64)
    right = np.asarray([3, 3, 9, 1], dtype=np.int64)
    li, ri = match_pairs(left, right)
    pairs = set(zip(li.tolist(), ri.tolist()))
    expected = {
        (i, j)
        for i in range(len(left))
        for j in range(len(right))
        if left[i] == right[j]
    }
    assert pairs == expected


# ----------------------------------------------------------------------
# tuple-store parity
# ----------------------------------------------------------------------
relation_rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30
)


@given(relation_rows, relation_rows)
def test_columnar_relation_matches_python_relation(rows, more_rows):
    py = Relation("R", 2, rows)
    col = ColumnarRelation("R", 2, rows)
    assert col == py and py == col
    assert len(col) == len(py)
    assert col.rows() == py.rows()
    assert col.project((1, 0)).rows() == py.project((1, 0)).rows()
    assert col.project(()).rows() == py.project(()).rows()
    assert col.select_eq(0, 3).rows() == py.select_eq(0, 3).rows()
    assert col.distinct_values(1) == py.distinct_values(1)
    assert col.active_domain() == py.active_domain()
    assert col.index((0,)).keys() == py.index((0,)).keys()
    for key, bucket in col.index((0, 1)).items():
        assert sorted(bucket) == sorted(py.index((0, 1))[key])
    # interleaved single-tuple mutation
    for i, row in enumerate(more_rows):
        if i % 3 == 2:
            py.discard(row)
            col.discard(row)
        else:
            py.add(row)
            col.add(row)
        assert col == py
    removed_py = py.retain(lambda t: t[0] % 2 == 0)
    removed_col = col.retain(lambda t: t[0] % 2 == 0)
    assert removed_py == removed_col
    assert col == py
    assert col.copy() == py.copy()


def test_columnar_relation_edge_arities():
    zero = ColumnarRelation("Z", 0)
    assert zero.is_empty() and len(zero) == 0
    zero.add(())
    assert len(zero) == 1 and () in zero
    zero.add(())
    assert len(zero) == 1
    zero.discard(())
    assert zero.is_empty()

    one = ColumnarRelation("U", 1, [("x",), ("y",), ("x",)])
    assert len(one) == 2
    assert one.distinct_values(0) == {"x", "y"}
    with pytest.raises(ValueError):
        one.add(("a", "b"))
    with pytest.raises(IndexError):
        one.index((1,))


def test_relation_indexes_maintained_incrementally():
    rel = Relation("R", 2, [(1, 2), (3, 4)])
    idx = rel.index((0,))
    rel.add((5, 6))
    # same cached dict object, updated in place — not rebuilt
    assert rel.index((0,)) is idx
    assert idx[(5,)] == [(5, 6)]
    rel.discard((3, 4))
    assert rel.index((0,)) is idx
    assert (3,) not in idx
    rel.add_all([(3, 4), (5, 7)])
    assert rel.index((0,)) is idx
    assert sorted(idx[(5,)]) == [(5, 6), (5, 7)]
    # and the maintained index equals a fresh rebuild
    fresh = Relation("R", 2, rel.rows()).index((0,))
    assert {k: sorted(v) for k, v in idx.items()} == {
        k: sorted(v) for k, v in fresh.items()
    }


def test_backend_interface_registration():
    assert isinstance(Relation("R", 1), TupleStore)
    assert isinstance(ColumnarRelation("R", 1), TupleStore)
    assert isinstance(Frame(("x",)), FrameAlgebra)
    assert isinstance(ColumnarFrame.empty(("x",)), FrameAlgebra)


def test_database_backend_switch():
    db = Database.from_dict({"R": [(1, 2)], "S": [(2, 3)]}, backend="columnar")
    assert db.backend == "columnar"
    assert isinstance(db["R"], ColumnarRelation)
    # relations of one database share the dictionary
    assert db["R"].dictionary is db["S"].dictionary
    assert isinstance(db.ensure_relation("T", 3), ColumnarRelation)
    assert isinstance(db.copy()["R"], ColumnarRelation)
    back = db.to_backend("python")
    assert isinstance(back["R"], Relation)
    assert back["R"].rows() == db["R"].rows()
    with pytest.raises(ValueError):
        Database(backend="gpu")


# ----------------------------------------------------------------------
# frame-algebra parity
# ----------------------------------------------------------------------
frame_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    max_size=25,
)


@given(frame_rows, frame_rows)
def test_frame_algebra_parity(left_rows, right_rows):
    py_l = Frame(("x", "y", "z"), left_rows)
    py_r = Frame(("y", "z", "w"), right_rows)
    shared = Dictionary()
    col_l = ColumnarFrame.from_rows(("x", "y", "z"), left_rows, shared)
    col_r = ColumnarFrame.from_rows(("y", "z", "w"), right_rows, shared)

    assert col_l.to_tuples() == py_l.to_tuples()
    assert (
        col_l.project(("z", "x")).to_tuples()
        == py_l.project(("z", "x")).to_tuples()
    )
    assert col_l.project(()).to_tuples() == py_l.project(()).to_tuples()
    assert (
        col_l.join(col_r).to_tuples() == py_l.join(py_r).to_tuples()
    )
    assert (
        col_l.semijoin(col_r).to_tuples()
        == py_l.semijoin(py_r).to_tuples()
    )
    allowed = {(r[1], r[2]) for r in left_rows[::2]}
    assert (
        col_l.select_in(("y", "z"), allowed).to_tuples()
        == py_l.select_in(("y", "z"), allowed).to_tuples()
    )
    assert (
        col_l.rename({"x": "a"}).to_tuples(("a", "y", "z"))
        == py_l.rename({"x": "a"}).to_tuples(("a", "y", "z"))
    )
    assert (
        col_l.reorder(("z", "y", "x")).to_tuples()
        == py_l.reorder(("z", "y", "x")).to_tuples()
    )


@given(frame_rows, frame_rows)
def test_frame_cross_product_parity(left_rows, right_rows):
    py_l = Frame(("x", "y", "z"), left_rows)
    py_r = Frame(("u", "v", "w"), right_rows)
    col_l = ColumnarFrame.from_rows(("x", "y", "z"), left_rows)
    col_r = ColumnarFrame.from_rows(("u", "v", "w"), right_rows)
    assert col_l.join(col_r).to_tuples() == py_l.join(py_r).to_tuples()
    assert (
        col_l.semijoin(col_r).to_tuples()
        == py_l.semijoin(py_r).to_tuples()
    )


@given(frame_rows)
def test_mixed_backend_frames_interoperate(rows):
    """A columnar frame can join/semijoin a Python frame and vice versa."""
    order = ("x", "y", "z", "w")
    py_l = Frame(("x", "y", "z"), rows)
    py_r = Frame(("y", "z", "w"), rows)
    col_l = ColumnarFrame.from_rows(("x", "y", "z"), rows)
    col_r = ColumnarFrame.from_rows(("y", "z", "w"), rows)
    expected = py_l.join(py_r).to_tuples(order)
    assert py_l.join(col_r).to_tuples(order) == expected
    assert col_l.join(py_r).to_tuples(order) == expected
    semi = py_l.semijoin(py_r).to_tuples()
    assert py_l.semijoin(col_r).to_tuples() == semi
    assert col_l.semijoin(py_r).to_tuples() == semi


def test_columnar_frame_separate_dictionaries_coerce():
    a = ColumnarFrame.from_rows(("x", "y"), [(1, 2), (3, 4)])
    b = ColumnarFrame.from_rows(("y", "z"), [(2, 9), (4, 7), (5, 5)])
    assert a.join(b).to_tuples() == {(1, 2, 9), (3, 4, 7)}
    assert a.semijoin(b).to_tuples() == {(1, 2), (3, 4)}


def test_columnar_frame_unit_and_empty():
    unit = ColumnarFrame.unit()
    assert len(unit) == 1 and () in unit
    empty = ColumnarFrame.empty(("x",))
    assert empty.is_empty()
    some = ColumnarFrame.from_rows(("x",), [(1,)])
    assert some.join(unit.unit_like()).to_tuples() == {(1,)}
    assert some.join(some.empty_like(("x",))).to_tuples() == set()
    assert some.semijoin(unit).to_tuples() == {(1,)}
    assert some.semijoin(empty.empty_like(())).to_tuples() == set()


def test_from_atom_repeated_variables():
    rel = ColumnarRelation("R", 3, [(1, 1, 2), (1, 2, 2), (4, 4, 4)])
    frame = ColumnarFrame.from_atom(rel, ("x", "x", "y"))
    py = Frame.from_atom(
        Relation("R", 3, [(1, 1, 2), (1, 2, 2), (4, 4, 4)]), ("x", "x", "y")
    )
    assert frame.variables == py.variables == ("x", "y")
    assert frame.to_tuples() == py.to_tuples() == {(1, 2), (4, 4)}


# ----------------------------------------------------------------------
# join-stack parity on random queries and databases
# ----------------------------------------------------------------------
@settings(max_examples=40)
@given(queries_with_databases(max_atoms=3, max_tuples=20))
def test_join_stack_backend_parity(query_db):
    query, db = query_db
    expected = query.evaluate_brute_force(db)
    db_py, db_col = both_backends(db)

    assert generic_join(query, db_py) == expected
    assert generic_join(query, db_col) == expected

    assert left_deep_plan_join(query, db_py).to_tuples() == expected
    assert left_deep_plan_join(query, db_col).to_tuples() == expected

    try:
        tree = join_tree(query.hypergraph())
    except ValueError:
        return  # cyclic — Yannakakis does not apply
    assert yannakakis_boolean(query, db_py, tree) == bool(expected)
    assert yannakakis_boolean(query, db_col, tree) == bool(expected)
    assert (
        yannakakis_project(query, db_py, tree).to_tuples() == expected
    )
    assert (
        yannakakis_project(query, db_col, tree).to_tuples() == expected
    )
    full = query.as_join_query()
    full_expected = full.evaluate_brute_force(db)
    assert yannakakis_full(full, db_py, tree).to_tuples() == full_expected
    result_col = yannakakis_full(full, db_col, tree)
    assert isinstance(result_col, ColumnarFrame)
    assert result_col.to_tuples() == full_expected


@settings(max_examples=25)
@given(conjunctive_queries(max_atoms=3, max_arity=2))
def test_forced_backend_on_python_database(query):
    """atom_frames(backend=...) converts frames regardless of storage."""
    from tests.strategies import random_database_for

    db = random_database_for(query, 12, 4, seed=11)
    frames_py = atom_frames(query, db, backend="python")
    frames_col = atom_frames(query, db, backend="columnar")
    assert all(isinstance(f, Frame) for f in frames_py)
    assert all(isinstance(f, ColumnarFrame) for f in frames_col)
    for py, col in zip(frames_py, frames_col):
        assert py.variables == col.variables
        assert py.to_tuples() == col.to_tuples()
    with pytest.raises(ValueError):
        atom_frames(query, db, backend="gpu")


def test_arity0_empty_relation_falsifies_query():
    """Regression: generic_join used to ignore empty arity-0 atoms."""
    query = ConjunctiveQuery((), (Atom("T", ()),))
    for backend in BACKENDS:
        db = Database(backend=backend)
        db.add_relation(db.new_relation("T", 0))
        assert query.evaluate_brute_force(db) == set()
        assert generic_join(query, db) == set()
        assert left_deep_plan_join(query, db).to_tuples() == set()
        db["T"].add(())
        assert generic_join(query, db) == {()}
        assert left_deep_plan_join(query, db).to_tuples() == {()}


def test_empty_relation_flows_through_columnar_stack():
    query = ConjunctiveQuery(
        ("x", "y", "z"),
        (Atom("R", ("x", "y")), Atom("S", ("y", "z"))),
    )
    db = Database(backend="columnar")
    db.add_relation(db.new_relation("R", 2))
    db.add_relation(db.new_relation("S", 2, [(1, 2)]))
    assert generic_join(query, db) == set()
    assert left_deep_plan_join(query, db).to_tuples() == set()
    assert yannakakis_full(query, db).to_tuples() == set()
    assert not yannakakis_boolean(query, db)


def test_self_join_columnar_parity():
    query = ConjunctiveQuery(
        ("x", "y", "z"),
        (Atom("E", ("x", "y")), Atom("E", ("y", "z"))),
    )
    rows = [(1, 2), (2, 3), (3, 1), (2, 2)]
    db_py = Database.from_dict({"E": rows})
    db_col = Database.from_dict({"E": rows}, backend="columnar")
    expected = query.evaluate_brute_force(db_py)
    assert generic_join(query, db_col) == expected
    assert left_deep_plan_join(query, db_col).to_tuples() == expected
