"""A4 (ablation) — triangle counting: matrix trace vs combinatorial.

The counting sibling of Theorem 3.2's technique: trace(A·B·C) counts
q̄△ answers through (integer) matrix multiplication, against the
neighbor-intersection scan.  On dense instances the vectorized matrix
route wins by orders of magnitude — the practical face of Section 2.3.
"""

import pytest

from repro.joins.cycles import (
    count_triangles_combinatorial,
    count_triangles_matrix,
)
from repro.workloads import agm_tight_triangle_db, random_triangle_db

from benchmarks._harness import fit, fmt_fit, fmt_seconds, sweep


def test_a4_counting_backends_agree_and_scale(
    benchmark, experiment_report
):
    def run():
        matrix = fit(
            sweep(
                [400, 900, 1600, 2500],
                agm_tight_triangle_db,
                count_triangles_matrix,
            )
        )
        comb = fit(
            sweep(
                [400, 900, 1600, 2500],
                agm_tight_triangle_db,
                count_triangles_combinatorial,
            )
        )
        return matrix, comb

    matrix, comb = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "count triangles: trace(ABC) route",
        "n^ω on the heavy part (Sec 2.3 technique)",
        fmt_fit(matrix),
    )
    experiment_report.row(
        "count triangles: combinatorial scan",
        "Θ(m^{3/2}) on AGM-tight inputs",
        fmt_fit(comb),
    )


def test_a4_dense_crossover(benchmark, experiment_report):
    import time

    db = agm_tight_triangle_db(10000)  # side 100, 1M answers

    def run():
        start = time.perf_counter()
        via_matrix = count_triangles_matrix(db)
        matrix_time = time.perf_counter() - start
        start = time.perf_counter()
        via_comb = count_triangles_combinatorial(db)
        comb_time = time.perf_counter() - start
        assert via_matrix == via_comb == 100**3
        return matrix_time, comb_time

    matrix_time, comb_time = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "1M-triangle instance: matrix vs combinatorial",
        "matrix multiplication wins when output is dense",
        f"matrix {fmt_seconds(matrix_time)}, scan {fmt_seconds(comb_time)}",
    )
    assert matrix_time < comb_time


def test_a4_single_count(benchmark):
    db = random_triangle_db(20000, 300, seed=4)
    benchmark(lambda: count_triangles_matrix(db))
