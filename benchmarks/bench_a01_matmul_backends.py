"""A1 (ablation) — Boolean matmul backends and the effective ω.

The AYZ analysis (Theorem 3.2) is parameterized by the backend's
exponent ω.  We fit the empirical exponent of each backend so the
triangle experiments can be read against the *actual* ω of this
machine: numpy's BLAS route, the from-scratch Strassen (log2 7), and
the naive cubic loop.
"""

import numpy as np
import pytest

from repro.matmul import bmm_naive, bmm_numpy, bmm_strassen
from repro.matmul.dense import STRASSEN_EXPONENT

from benchmarks._harness import fit, fmt_fit, sweep


def random_pair(n):
    rng = np.random.default_rng(n)
    return rng.random((n, n)) < 0.3, rng.random((n, n)) < 0.3


def test_a1_backend_exponents(benchmark, experiment_report):
    plans = {
        "numpy": ([128, 256, 512, 1024], bmm_numpy),
        "strassen": ([128, 256, 512], bmm_strassen),
        "naive": ([64, 128, 256], bmm_naive),
    }

    def run():
        fits = {}
        for name, (sizes, backend) in plans.items():
            fits[name] = fit(
                sweep(
                    sizes,
                    random_pair,
                    lambda pair, b=backend: b(*pair),
                )
            )
        return fits

    fits = benchmark.pedantic(run, rounds=1, iterations=1)
    claims = {
        "numpy": "n^ω, BLAS (ω ≈ 3 flops, heavily vectorized)",
        "strassen": f"n^{STRASSEN_EXPONENT} (Strassen 1969)",
        "naive": "n^3 combinatorial",
    }
    for name, result in fits.items():
        experiment_report.row(
            f"dense BMM backend: {name}",
            claims[name],
            fmt_fit(result),
        )
    # The from-scratch recursion tracks Strassen's exponent closely;
    # the other two are vectorization-dominated at these sizes, so we
    # only report them.
    assert fits["strassen"].within(STRASSEN_EXPONENT, 0.4)


def test_a1_numpy_single_multiply(benchmark):
    a, b = random_pair(768)
    benchmark(lambda: bmm_numpy(a, b))
