"""E6 — Theorems 3.8/3.13: the counting dichotomy, measured.

Same body, two heads: q(x,y,z) :- R(x,y), S(y,z) keeps the join
variable (free-connex) vs q(x,z) projecting it out (not free-connex).
The free-connex counter must scale linearly even when the answer set
is quadratic; the non-free-connex side can only count by evaluating.
"""

import pytest

from repro.counting import count_answers, count_free_connex
from repro.db.database import Database
from repro.db.relation import Relation
from repro.query import catalog

from benchmarks._harness import fit, fmt_fit, sweep

FC, NFC = catalog.free_connex_pair()


def bipartite_db(m):
    """R = A×{0..3}, S = {0..3}×B: answer count ~ (m/4)^2 via 4 hubs."""
    side = max(m // 4, 1)
    db = Database()
    db.add_relation(
        Relation("R", 2, ((i, h) for i in range(side) for h in range(4)))
    )
    db.add_relation(
        Relation("S", 2, ((h, j) for h in range(4) for j in range(side)))
    )
    return db


def test_e6_free_connex_counting_linear(benchmark, experiment_report):
    sizes = [2000, 4000, 8000, 16000]

    def run():
        return fit(
            sweep(
                sizes,
                bipartite_db,
                lambda db: count_free_connex(FC, db),
            )
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "count free-connex q(x,y,z) (quadratic output)",
        "Õ(m) (Theorem 3.13)",
        fmt_fit(result),
    )
    assert result.exponent < 1.6


def test_e6_non_free_connex_counting_superlinear(
    benchmark, experiment_report
):
    sizes = [400, 800, 1600]

    def run():
        return fit(
            sweep(
                sizes,
                bipartite_db,
                lambda db: count_answers(NFC, db),
            )
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "count non-free-connex q(x,z), same body",
        "no O(m^{2-ε}) (Theorem 3.12, SETH)",
        fmt_fit(result),
    )
    assert result.exponent > 1.5


def test_e6_crossover_same_database(benchmark, experiment_report):
    """On one database, the two heads differ by orders of magnitude."""
    import time

    db = bipartite_db(4000)

    def run():
        start = time.perf_counter()
        fc_count = count_free_connex(FC, db)
        fc_time = time.perf_counter() - start
        start = time.perf_counter()
        nfc_count = count_answers(NFC, db)
        nfc_time = time.perf_counter() - start
        return fc_count, fc_time, nfc_count, nfc_time

    fc_count, fc_time, nfc_count, nfc_time = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert fc_count >= nfc_count  # projection only merges answers
    experiment_report.row(
        "same DB, m=8000: free-connex vs projected head",
        "projection flips the dichotomy side",
        f"fc {fc_time * 1e3:.1f}ms vs non-fc {nfc_time * 1e3:.1f}ms",
    )
