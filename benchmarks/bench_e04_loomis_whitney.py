"""E4 — Example 3.4 / Theorem 3.5: Loomis–Whitney joins.

Measures the Boolean LW_k evaluation exponent against the claimed
Õ(m^{1+1/(k-1)}), and executes the hyperclique reduction's size
accounting: |R| ≤ (k-1)! · |E|.
"""

import pytest

from repro.joins.loomis_whitney import (
    loomis_whitney_boolean,
    loomis_whitney_exponent,
)
from repro.query import catalog
from repro.reductions import HypercliqueToLoomisWhitney
from repro.workloads import random_database, random_uniform_hypergraph

from benchmarks._harness import fit, fmt_fit, sweep


def lw_db(k, m):
    query = catalog.loomis_whitney_query(k, boolean=False)
    # Small domain keeps the join constrained (worst-case-ish inputs).
    return random_database(query, m, max(int(m ** (1 / (k - 1))), 3), seed=m)


@pytest.mark.parametrize("k", [4, 5])
def test_e4_lw_scaling(k, benchmark, experiment_report):
    sizes = [500, 1000, 2000, 4000]

    def run():
        return fit(
            sweep(
                sizes,
                lambda m: lw_db(k, m),
                lambda db: loomis_whitney_boolean(db, k),
            )
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    claimed = loomis_whitney_exponent(k)
    experiment_report.row(
        f"Boolean LW_{k} via generic join",
        f"Õ(m^{claimed:.2f})",
        fmt_fit(result),
    )
    assert result.exponent < claimed + 0.75


def test_e4_hyperclique_reduction_accounting(benchmark, experiment_report):
    k = 4
    reduction = HypercliqueToLoomisWhitney(k)

    def run():
        rows = []
        for edge_count in (50, 100, 200, 400):
            edges = random_uniform_hypergraph(
                24, k - 1, edge_count, seed=edge_count
            )
            db = reduction.build_database(edges)
            rows.append((edge_count, db.size()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    import math

    factor = math.factorial(k - 1) * k  # permutations × k relations
    for edge_count, size in rows:
        assert size <= factor * edge_count
    growth = fit(rows)
    experiment_report.row(
        "hyperclique→LW database size vs |E|",
        "|R| ≤ (k-1)!·|E| per atom, exponent 1",
        fmt_fit(growth),
    )
