"""A13 — the serving layer under concurrent load.

PR 9's HTTP service, measured end-to-end over loopback sockets:

- **aggregate-read throughput** — hundreds of concurrent client
  sessions (keep-alive connections on their own threads) hammer the
  ``len`` endpoint of one prepared handle.  Reads hit the maintained
  counter through the shard-executor pool, so the asserted floor
  (>= 500 req/s full, >= 50 smoke) is engine-light and measures the
  serving stack itself: parsing, routing, executor dispatch, JSON
  framing.  p50/p95/p99 latencies land in the perf trajectory
  alongside the throughput.
- **NDJSON ingestion** — one streamed upload, coalesced by the
  batcher into bulk ``add_all`` calls; reported as rows/s.
- **paged reads** — the ingested handle read back page by page.

Timings append to ``benchmarks/BENCH_backends.json``.  Set
``BENCH_SMOKE=1`` for CI-sized load with the relaxed floor.
"""

import os
import threading
import time

import pytest

from repro.server import ServerClient, ServerThread

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SESSIONS = 24 if SMOKE else 200
REQUESTS = 10 if SMOKE else 50
ROWS = 2_000 if SMOKE else 50_000
PAGE = 200
MIN_THROUGHPUT = 50.0 if SMOKE else 500.0


def percentile(latencies, p):
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(
        len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1)))
    )
    return ordered[index]


@pytest.fixture(scope="module")
def served():
    """One server + one ingested tenant shared by the module."""
    with ServerThread(flush_rows=2048, flush_interval=0.02) as server:
        client = ServerClient(server.host, server.port)
        client.create_db("bench", backend="columnar")
        begin = time.perf_counter()
        client.update_stream(
            "bench",
            (
                {"relation": "E", "row": [i % 977, i % 641]}
                for i in range(ROWS)
            ),
        )
        ingest_seconds = time.perf_counter() - begin
        query = client.prepare("bench", "q(x) :- E(x, y)")
        yield server, client, query, ingest_seconds
        client.close()


def read_load(server, handle_path, sessions, requests):
    """``sessions`` keep-alive clients, ``requests`` reads each."""
    latencies = []
    lock = threading.Lock()
    start_barrier = threading.Barrier(sessions + 1)
    failures = []

    def worker():
        client = ServerClient(server.host, server.port)
        mine = []
        try:
            start_barrier.wait()
            for _ in range(requests):
                begin = time.perf_counter()
                client._json("GET", handle_path)
                mine.append(time.perf_counter() - begin)
        except BaseException as exc:
            failures.append(exc)
        finally:
            client.close()
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(sessions)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    if failures:
        raise failures[0]
    return latencies, elapsed


def test_a13_ndjson_ingestion(served, experiment_report):
    server, client, query, ingest_seconds = served
    rows_per_s = ROWS / ingest_seconds
    expected = len({i % 977 for i in range(ROWS)})  # q(x) projects
    assert query.count() == expected
    experiment_report.row(
        f"NDJSON ingest, {ROWS} rows, batched add_all",
        "streamed, read-your-writes",
        f"{rows_per_s:,.0f} rows/s ({fmt_seconds(ingest_seconds)})",
    )
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": "serving-ingest-ndjson",
                "backend": "columnar",
                "m": ROWS,
                "seconds": ingest_seconds,
                "rows_per_s": rows_per_s,
            }
        ],
    )


def test_a13_aggregate_read_throughput(
    served, benchmark, experiment_report
):
    server, client, query, _ = served
    path = f"/v1/q/{query.handle}/len"

    def run():
        return read_load(server, path, SESSIONS, REQUESTS)

    latencies, elapsed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    total = len(latencies)
    assert total == SESSIONS * REQUESTS
    throughput = total / elapsed
    p50 = percentile(latencies, 50)
    p95 = percentile(latencies, 95)
    p99 = percentile(latencies, 99)
    experiment_report.row(
        f"aggregate reads, {SESSIONS} concurrent sessions",
        f">= {MIN_THROUGHPUT:,.0f} req/s",
        f"{throughput:,.0f} req/s, p50 {fmt_seconds(p50)}, "
        f"p95 {fmt_seconds(p95)}, p99 {fmt_seconds(p99)}",
    )
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": "serving-aggregate-read",
                "backend": "columnar",
                "m": total,
                "seconds": elapsed,
                "sessions": SESSIONS,
                "req_per_s": throughput,
                "p50_s": p50,
                "p95_s": p95,
                "p99_s": p99,
            }
        ],
    )
    assert throughput >= MIN_THROUGHPUT, (
        f"aggregate-read throughput {throughput:,.0f} req/s below "
        f"the {MIN_THROUGHPUT:,.0f} req/s floor"
    )


def test_a13_paged_reads(served, benchmark, experiment_report):
    server, client, query, _ = served
    total_rows = query.count()

    def run():
        fetched = 0
        for offset in range(0, total_rows, PAGE):
            fetched += len(query.page(offset, PAGE))
        return fetched

    begin = time.perf_counter()
    fetched = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = time.perf_counter() - begin
    assert fetched == total_rows
    experiment_report.row(
        f"paged reads, {PAGE}-row pages over {total_rows} answers",
        "lex order, stable under paging",
        f"{fetched / max(seconds, 1e-9):,.0f} rows/s "
        f"({fmt_seconds(seconds)})",
    )
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": "serving-paged-read",
                "backend": "columnar",
                "m": fetched,
                "seconds": seconds,
            }
        ],
    )
