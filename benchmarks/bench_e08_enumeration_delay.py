"""E8 — Theorem 3.17: constant delay after linear preprocessing.

For the free-connex side we measure that (a) preprocessing scales
near-linearly and (b) the *maximum delay* between answers stays flat
as the database grows.  For the non-free-connex star query the honest
fallback's preprocessing grows like the full evaluation — the gap
Theorem 3.16 proves necessary.
"""

import pytest

from repro.enumeration import ConstantDelayEnumerator, measure_delays
from repro.query import catalog
from repro.workloads.databases import functional_path_db, random_star_db

from benchmarks._harness import fit, fmt_fit, sweep

FC = catalog.path_query(2)  # q(v1,v2,v3): free-connex join query
NFC = catalog.star_query_sjf(2)


def test_e8_free_connex_delay_flat(benchmark, experiment_report):
    sizes = [2000, 4000, 8000, 16000]

    def run():
        profiles = {}
        for m in sizes:
            db = functional_path_db(2, m, seed=m)
            profiles[m] = measure_delays(
                lambda db=db: ConstantDelayEnumerator(FC, db), limit=2000
            )
        return profiles

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    pre_fit = fit(
        [(m, p.preprocessing_seconds) for m, p in profiles.items()]
    )
    experiment_report.row(
        "free-connex preprocessing",
        "Õ(m), exponent 1",
        fmt_fit(pre_fit),
    )
    assert pre_fit.exponent < 1.7
    delays = {m: p.mean_delay for m, p in profiles.items()}
    smallest, largest = delays[sizes[0]], delays[sizes[-1]]
    experiment_report.row(
        "free-connex mean delay, m 2k→16k",
        "constant (independent of m)",
        f"{smallest * 1e6:.1f}µs → {largest * 1e6:.1f}µs",
    )
    # 8× data must not mean 8× delay; allow generous interpreter noise.
    assert largest < smallest * 4 + 1e-4


def test_e8_non_free_connex_preprocessing_grows(
    benchmark, experiment_report
):
    sizes = [500, 1000, 2000]

    def hub_star_db(m):
        """Constant hub count: the q̄*_2 output is Θ(m²/hubs)."""
        from repro.db.database import Database
        from repro.db.relation import Relation

        hubs = 8
        db = Database()
        for name in ("R1", "R2"):
            rel = Relation(name, 2)
            for i in range(m):
                rel.add(((name, i), i % hubs))
            db.add_relation(rel)
        return db

    def run():
        points = []
        for m in sizes:
            db = hub_star_db(m)
            profile = measure_delays(
                lambda db=db: ConstantDelayEnumerator(
                    NFC, db, strict=False
                ),
                limit=1,
            )
            points.append((m, profile.preprocessing_seconds))
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    result = fit(points)
    experiment_report.row(
        "non-free-connex q̄*_2 fallback preprocessing",
        "no Õ(m) preprocessing (Thm 3.16, Hyp 1)",
        fmt_fit(result),
    )
    assert result.exponent > 1.5


def test_e8_enumeration_throughput(benchmark):
    db = functional_path_db(2, 20000, seed=1)
    enumerator = ConstantDelayEnumerator(FC, db)
    benchmark(lambda: sum(1 for _ in enumerator))
