"""E7 — Theorem 3.15 / Hypothesis 1: sparse BMM through q̄*_2.

A constant-delay enumerator for q̄*_2 would multiply sparse Boolean
matrices in Õ(m + m').  We run the reduction with the real
(materializing) enumerator and measure output-sensitivity: runtime as
a function of m' = nnz(A) + nnz(B) + nnz(AB), plus the crossover
between the combinatorial sparse algorithm and the dense n^ω route.
"""

import pytest

from repro.matmul import sparse_bmm, sparse_bmm_via_dense
from repro.reductions import bmm_via_enumeration
from repro.workloads import random_sparse_boolean_matrix

from benchmarks._harness import fit, fmt_fit, fmt_seconds, sweep


def matrix_pair(nnz):
    n = max(int(nnz**0.75), 4)
    a = random_sparse_boolean_matrix(n, n, nnz, seed=nnz)
    b = random_sparse_boolean_matrix(n, n, nnz, seed=nnz + 1)
    return a, b


def test_e7_output_sensitive_scaling(benchmark, experiment_report):
    def run():
        points = []
        for nnz in (1000, 2000, 4000, 8000):
            a, b = matrix_pair(nnz)
            import time

            start = time.perf_counter()
            product = bmm_via_enumeration(a, b)
            elapsed = time.perf_counter() - start
            m_total = a.nnz + b.nnz + product.nnz
            points.append((m_total, elapsed))
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    result = fit(points)
    experiment_report.row(
        "BMM via q̄*_2 enumeration, time vs m=in+out",
        "Õ(m) impossible (Hyp 1); best known m^1.35",
        fmt_fit(result),
    )


def test_e7_sparse_vs_dense_routes(benchmark, experiment_report):
    """The Section 2.3 point: dense n^ω does not help sparse inputs."""
    import time

    nnz = 4000
    a, b = matrix_pair(nnz)

    def run():
        start = time.perf_counter()
        sparse_result = sparse_bmm(a, b)
        sparse_time = time.perf_counter() - start
        start = time.perf_counter()
        dense_result = sparse_bmm_via_dense(a, b)
        dense_time = time.perf_counter() - start
        assert sparse_result == dense_result
        return sparse_time, dense_time

    sparse_time, dense_time = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        f"sparse route vs dense route (nnz={nnz}, n={a.shape[0]})",
        "sparse wins when nnz ≪ n²",
        f"sparse {fmt_seconds(sparse_time)} vs dense {fmt_seconds(dense_time)}",
    )


def test_e7_single_product(benchmark):
    a, b = matrix_pair(5000)
    benchmark(lambda: bmm_via_enumeration(a, b))
