"""E2 — Theorem 3.2: the AYZ triangle algorithm and its Δ ablation.

The paper's algorithm decides q△ in Õ(m^{2ω/(ω+1)}) by splitting at
degree Δ = m^{(ω-1)/(ω+1)}.  We measure:

- the scaling exponent of the AYZ implementation vs the naive scan on
  triangle-free graphs (worst case: no early exit possible);
- the Δ ablation: the paper's threshold vs all-light / all-heavy
  extremes, showing the split is what makes the bound work.
"""

import pytest

from repro.joins.triangle import (
    split_threshold,
    triangle_boolean_ayz,
    triangle_boolean_naive,
)
from repro.solvers.triangle import graph_as_triangle_database
from repro.workloads import triangle_free_graph

from benchmarks._harness import fit, fmt_fit, fmt_seconds, sweep


def make_db(m):
    graph = triangle_free_graph(max(m // 10, 6), m, seed=m)
    return graph_as_triangle_database(graph)


def test_e2_scaling_exponents(benchmark, experiment_report):
    sizes = [1000, 2000, 4000, 8000]

    def run():
        naive = fit(
            sweep(sizes, make_db, triangle_boolean_naive)
        )
        ayz = fit(
            sweep(
                sizes,
                make_db,
                lambda db: triangle_boolean_ayz(db, omega=3.0),
            )
        )
        return naive, ayz

    naive, ayz = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "naive triangle scan (triangle-free input)",
        "up to Θ(m^{3/2})",
        fmt_fit(naive),
    )
    experiment_report.row(
        "AYZ split + BMM (ω=3 threshold)",
        "Õ(m^{2ω/(ω+1)}) = m^1.5 at ω=3",
        fmt_fit(ayz),
    )
    assert ayz.exponent < 2.2


def test_e2_delta_ablation(benchmark, experiment_report):
    """The paper's Δ against degenerate thresholds, single size."""
    db = make_db(6000)
    m = db.size()
    variants = {
        "paper Δ=m^{(ω-1)/(ω+1)}": split_threshold(m, 3.0),
        "all-light (Δ=∞)": 1e18,
        "all-heavy (Δ=0)": 0.0,
    }

    import time

    def run():
        timings = {}
        for label, delta in variants.items():
            start = time.perf_counter()
            triangle_boolean_ayz(db, delta=delta)
            timings[label] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, seconds in timings.items():
        experiment_report.row(
            f"Δ ablation: {label}",
            "balanced Δ minimizes the max of both parts",
            fmt_seconds(seconds),
        )


def test_e2_ayz_single_call(benchmark):
    db = make_db(8000)
    benchmark(lambda: triangle_boolean_ayz(db))
