"""A8 — dynamic maintenance on the columnar backend.

PR 3's update path: a stream of single-tuple ``add``/``discard``
updates interleaved with queries, answered three ways —

- **incremental** — the structures repair themselves from the
  relations' delta segments
  (:class:`repro.dynamic.AcyclicCountMaintainer` folding delta
  messages into the FAQ tables;
  :class:`repro.direct_access.lex.LexDirectAccess` with
  ``on_stale="refresh"`` splicing rows into its sorted blocks);
- **rebuild-per-query** — recompute the aggregate / rebuild the
  direct-access stores from scratch at every query point (what the
  pre-PR code forced, since derived structures could not outlive a
  mutation);
- **oracle** — an independent from-scratch evaluation whose answers
  every query point is asserted byte-identical against.

Asserted: answers identical throughout, and the incremental path
``>= 5x`` faster than rebuild-per-query on both workloads (measured
headroom is far larger for counting).  Timings are appended to
``benchmarks/BENCH_backends.json`` for the perf trajectory.

Set ``BENCH_SMOKE=1`` to run tiny sizes and skip the speedup
assertions (CI uses this to keep the update path exercised on
3.10–3.12 without paying benchmark runtimes).
"""

import os
import random
import time

from repro.counting import count_answers
from repro.direct_access import LexDirectAccess
from repro.dynamic import AcyclicCountMaintainer
from repro.query import catalog
from repro.workloads import random_star_db

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

STAR_M = 1_000 if SMOKE else 60_000
UPDATES = 30 if SMOKE else 200
MIN_SPEEDUP = 5.0

STAR_QUERY = catalog.star_query_full(2, self_join_free=True)
LEX_ORDER = ("z", "x1", "x2")


def _star_database():
    return random_star_db(
        2, STAR_M, max(STAR_M // 40, 3), seed=21,
        self_join_free=True, backend="columnar",
    )


def _update_stream(steps, domain):
    rng = random.Random(97)
    for _ in range(steps):
        name = rng.choice(("R1", "R2"))
        row = (rng.randrange(domain * 2), rng.randrange(domain))
        yield name, row, rng.random() < 0.45


def _report_and_emit(
    experiment_report, workload, label, answers_equal, seconds, m
):
    speedup = seconds["rebuild"] / seconds["incremental"]
    experiment_report.row(
        label,
        "identical answers, incremental faster",
        f"{speedup:.1f}x (rebuild {fmt_seconds(seconds['rebuild'])}, "
        f"incremental {fmt_seconds(seconds['incremental'])})",
    )
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": workload,
                "backend": mode,
                "m": m,
                "seconds": seconds[mode],
            }
            for mode in seconds
        ],
    )
    assert answers_equal
    return speedup


def test_a8_dynamic_counting(benchmark, experiment_report):
    domain = max(STAR_M // 40, 3)

    def run():
        db = _star_database()
        maintainer = AcyclicCountMaintainer(STAR_QUERY, db)
        maintainer.count()  # build off the update clock
        updates = list(_update_stream(UPDATES, domain))

        incremental = []
        start = time.perf_counter()
        for name, row, delete in updates:
            (db[name].discard if delete else db[name].add)(row)
            incremental.append(maintainer.count())
        incremental_seconds = time.perf_counter() - start

        db = _star_database()
        rebuild = []
        start = time.perf_counter()
        for name, row, delete in updates:
            (db[name].discard if delete else db[name].add)(row)
            rebuild.append(count_answers(STAR_QUERY, db))
        rebuild_seconds = time.perf_counter() - start

        # Independent from-scratch oracle on a third copy.
        db = _star_database()
        oracle = []
        for name, row, delete in updates:
            (db[name].discard if delete else db[name].add)(row)
            oracle.append(count_answers(STAR_QUERY, db, method="free-connex"))
        return (
            incremental,
            rebuild,
            oracle,
            {
                "incremental": incremental_seconds,
                "rebuild": rebuild_seconds,
            },
            maintainer.rebuilds,
        )

    incremental, rebuild, oracle, seconds, rebuilds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    equal = incremental == oracle and rebuild == oracle
    speedup = _report_and_emit(
        experiment_report,
        "dynamic_count",
        f"count q̂*_2 under {UPDATES} updates, m={2 * STAR_M}",
        equal,
        seconds,
        2 * STAR_M,
    )
    experiment_report.row(
        "maintainer full rebuilds over the stream",
        "0 below the compaction threshold",
        str(rebuilds),
    )
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP


def test_a8_dynamic_direct_access(benchmark, experiment_report):
    domain = max(STAR_M // 40, 3)
    probe_rng = random.Random(3)

    def run():
        db = _star_database()
        access = LexDirectAccess(
            STAR_QUERY, db, LEX_ORDER, on_stale="refresh"
        )
        len(access)  # build off the update clock
        updates = list(_update_stream(UPDATES, domain))
        probe_fractions = [
            probe_rng.random() for _ in range(len(updates))
        ]

        def probes(accessor, fraction):
            total = len(accessor)
            if not total:
                return (total, None)
            return (total, accessor.access(int(fraction * total)))

        incremental = []
        start = time.perf_counter()
        for (name, row, delete), fraction in zip(updates, probe_fractions):
            (db[name].discard if delete else db[name].add)(row)
            incremental.append(probes(access, fraction))
        incremental_seconds = time.perf_counter() - start

        db = _star_database()
        rebuild = []
        start = time.perf_counter()
        for (name, row, delete), fraction in zip(updates, probe_fractions):
            (db[name].discard if delete else db[name].add)(row)
            rebuild.append(
                probes(LexDirectAccess(STAR_QUERY, db, LEX_ORDER), fraction)
            )
        rebuild_seconds = time.perf_counter() - start
        return (
            incremental,
            rebuild,
            {
                "incremental": incremental_seconds,
                "rebuild": rebuild_seconds,
            },
            access.rebuilds,
        )

    incremental, rebuild, seconds, rebuilds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = _report_and_emit(
        experiment_report,
        "dynamic_lex",
        f"lex DA under {UPDATES} updates, m={2 * STAR_M}",
        incremental == rebuild,
        seconds,
        2 * STAR_M,
    )
    experiment_report.row(
        "direct-access full rebuilds over the stream",
        "0 below the compaction threshold",
        str(rebuilds),
    )
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP
