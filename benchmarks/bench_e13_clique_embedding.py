"""E13 — Section 4.2, Example 4.2/4.3 and Figure 1: clique embeddings.

Regenerates Figure 1, checks the embedding's accounting (4 clique
vertices per atom ⇒ database size O(n^4) ⇒ certified exponent
ℓ/max-depth = 5/4 for tropical 5-cycle aggregation), and runs
Min-Weight-5-Clique through the embedding against brute force.
"""

import math

import pytest

from repro.reductions import example_5cycle_embedding, figure1_ascii
from repro.solvers import min_weight_k_clique_brute
from repro.workloads import random_weighted_graph

from benchmarks._harness import fit, fmt_fit, fmt_seconds


def test_e13_figure1_regeneration(benchmark, experiment_report):
    art = benchmark.pedantic(figure1_ascii, rounds=1, iterations=1)
    for i in range(1, 6):
        assert art.count(f"x{i}") == 3  # each ψ(x_i) spans 3 cycle nodes
    experiment_report.note("Figure 1 regenerated:")
    for line in art.splitlines():
        experiment_report.note("  " + line)


def test_e13_embedding_accounting(benchmark, experiment_report):
    embedding = example_5cycle_embedding()

    def run():
        rows = []
        for n in (5, 6, 7, 8):
            graph, _ = random_weighted_graph(
                n, n * (n - 1) // 2, seed=n
            )
            db, _ = embedding.build_database(graph)
            rows.append((n, db.size()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    growth = fit(rows)
    experiment_report.row(
        "embedding database size vs n (complete graphs)",
        "O(n^4): 4 clique vertices per atom (Ex 4.3)",
        fmt_fit(growth) + " (falling-factorial inflated at small n)",
    )
    # Exact accounting on complete graphs: each of the 5 atoms holds
    # one tuple per ordered choice of 4 distinct vertices.
    for n, size in rows:
        assert size == 5 * n * (n - 1) * (n - 2) * (n - 3)
    experiment_report.row(
        "certified exponent for tropical q°5 aggregation",
        "ℓ / max-depth = 5/4 (Ex 4.3)",
        f"{embedding.power_lower_bound():.2f}",
    )


def test_e13_min_weight_clique_end_to_end(benchmark, experiment_report):
    embedding = example_5cycle_embedding()

    def run():
        import time

        outcomes = []
        for seed in (31, 32):
            graph, weights = random_weighted_graph(9, 30, seed=seed)
            start = time.perf_counter()
            via = embedding.min_weight_clique(graph, weights)
            via_time = time.perf_counter() - start
            start = time.perf_counter()
            brute = min_weight_k_clique_brute(graph, 5, weights)
            brute_time = time.perf_counter() - start
            expected = math.inf if brute is None else brute
            assert via == expected
            outcomes.append((via_time, brute_time))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    via_time = sum(t for t, _ in outcomes) / len(outcomes)
    brute_time = sum(t for _, t in outcomes) / len(outcomes)
    experiment_report.row(
        "Min-Weight-5-Clique via q°5 tropical aggregation",
        "agrees with n^5 brute force (Ex 4.3)",
        f"embedding {fmt_seconds(via_time)}, brute {fmt_seconds(brute_time)}",
    )
