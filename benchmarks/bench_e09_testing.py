"""E9 — Lemmas 3.20/3.21: the testing problem.

Lemma 3.20's upper bound: testing via direct access costs only a log
factor (measured: per-test access counts).  Lemma 3.21's lower bound:
for q*_2 the preprocessing of the honest tester grows superlinearly
(it must materialize), and triangle detection rides on it.
"""

import pytest

from repro.direct_access import TestingOracle
from repro.query import catalog
from repro.reductions import detect_triangle_via_testing
from repro.workloads import random_database, triangle_free_graph
from repro.workloads.databases import random_star_db

from benchmarks._harness import fit, fmt_fit, sweep

PATH = catalog.path_query(2)
STAR = catalog.star_query(2)


def test_e9_testing_via_direct_access_log_probes(
    benchmark, experiment_report
):
    def run():
        db = random_database(PATH, 8000, 400, seed=1)
        oracle = TestingOracle(PATH, db)
        answers = sorted(PATH.evaluate_brute_force(db))[:200]
        for answer in answers:
            assert oracle.test(answer)
        return oracle, len(answers)

    oracle, tests = benchmark.pedantic(run, rounds=1, iterations=1)
    per_test = oracle.accesses / tests
    experiment_report.row(
        "testing path query via direct access",
        "O(log M) accesses per test (Lemma 3.20)",
        f"{per_test:.1f} accesses/test on {tests} tests",
    )
    assert per_test < 40  # log2 of result size plus constant


def test_e9_star_testing_preprocessing_superlinear(
    benchmark, experiment_report
):
    sizes = [500, 1000, 2000]

    def run():
        import time

        points = []
        for m in sizes:
            db = random_star_db(2, m, max(m // 20, 4), seed=m)
            start = time.perf_counter()
            TestingOracle(STAR, db)  # hash mode: materializes
            points.append((m, time.perf_counter() - start))
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    result = fit(points)
    experiment_report.row(
        "testing q*_2: honest preprocessing",
        "not Õ(m) (Lemma 3.21, Triangle Hyp)",
        fmt_fit(result),
    )
    assert result.exponent > 1.2


def test_e9_triangle_via_testing_pipeline(benchmark, experiment_report):
    graph = triangle_free_graph(300, 1500, seed=2, plant_triangle=True)

    def run():
        return detect_triangle_via_testing(graph)

    found = benchmark.pedantic(run, rounds=1, iterations=1)
    assert found
    experiment_report.row(
        "triangle detection through q*_2 testing",
        "one test per edge decides triangles",
        "verified (planted triangle found)",
    )
