"""E11 — Lemma 3.25 / Theorem 3.26: sum-order direct access.

Tractable side: a covering-atom query sorts in Õ(m log m).  Hard side:
the 3SUM gadget query (two atoms, x and y never together) forces
materialization, and solving 3SUM through it measures the n² shape the
3SUM Hypothesis says is essentially optimal.
"""

import pytest

from repro.direct_access import SumOrderDirectAccess
from repro.query import parse_query
from repro.reductions import ThreeSumToSumOrderAccess
from repro.solvers import threesum_hashing
from repro.workloads import random_database, threesum_instance

from benchmarks._harness import fit, fmt_fit, sweep

COVERED = parse_query("q(x, y) :- R(x, y)")


def test_e11_covering_atom_linear(benchmark, experiment_report):
    sizes = [4000, 8000, 16000, 32000]

    def run():
        import time

        points = []
        for m in sizes:
            db = random_database(COVERED, m, m, seed=m)
            weights = {v: (v * 31) % 97 for v in range(m)}
            start = time.perf_counter()
            SumOrderDirectAccess(COVERED, db, weights)
            points.append((m, time.perf_counter() - start))
        return points

    result = fit(benchmark.pedantic(run, rounds=1, iterations=1))
    experiment_report.row(
        "covering-atom query: sum-order preprocessing",
        "Õ(m log m) — sort the covering atom (Thm 3.26)",
        fmt_fit(result),
    )
    assert result.exponent < 1.5


def test_e11_threesum_pipeline_scaling(benchmark, experiment_report):
    reduction = ThreeSumToSumOrderAccess()
    sizes = [100, 200, 400, 800]

    def run():
        import time

        points = []
        for n in sizes:
            a, b, c = threesum_instance(n, plant=False, seed=n)
            start = time.perf_counter()
            got = reduction.solve(a, b, c)
            points.append((n, time.perf_counter() - start))
            assert got == threesum_hashing(a, b, c)
        return points

    result = fit(benchmark.pedantic(run, rounds=1, iterations=1))
    experiment_report.row(
        "3SUM via sum-order direct access, time vs n",
        "Θ(n²)-ish — the 3SUM Hypothesis barrier",
        fmt_fit(result),
    )
    assert result.exponent > 1.2


def test_e11_probe_cost(benchmark, experiment_report):
    reduction = ThreeSumToSumOrderAccess()
    a, b, c = threesum_instance(600, plant=True, seed=7)
    db, weights = reduction.build_instance(a, b)
    from repro.direct_access import SumOrderDirectAccess

    accessor = SumOrderDirectAccess(
        reduction.query, db, weights, strict=False
    )

    def run():
        return [accessor.has_weight(float(value)) for value in c[:100]]

    probes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert any(probes)  # the planted triple is found
    experiment_report.row(
        "per-c probe via binary search on weights",
        "O(log n) accesses per c ∈ C",
        "100 probes answered; planted triple found",
    )
