"""A12 — parallel, spillable shard execution.

PR 8's ShardExecutor layer, measured three ways:

- **threaded aggregation** — counting + tropical aggregation of an
  acyclic star query over the sharded backend, serial executor vs a
  thread pool (``workers=4``).  Per-shard FAQ messages run
  concurrently (the NumPy kernels release the GIL) and merge in shard
  order, so the answers are asserted *identical*; on a multi-core
  host the threaded run must clear the speedup floor (>= 2x with 4+
  cores, >= 1.2x with 2-3; single-core hosts assert parity only).
- **co-partitioned joins** — both sides hash-partitioned on the
  shared join variable: shard *i* joins shard *i* directly, with
  **zero** build-side materialization (``coalesced_row_peak``),
  vs the broadcast fallback that coalesces the build side.
- **spilled aggregation** — the same query suite answered with
  ``max_resident_shards=1``: all but one shard's code matrix lives on
  disk as an ``np.memmap``, and answers must stay identical while the
  residency budget holds.

Timings append to ``benchmarks/BENCH_backends.json`` for the perf
trajectory.  Set ``BENCH_SMOKE=1`` for tiny sizes with the speed
assertions relaxed (parity and the structural assertions always run;
CI wires this into the bench-smoke matrix).
"""

import os
import tempfile
import time

from repro.counting import count_answers
from repro.db import Database
from repro.db.sharded import coalesced_row_peak, reset_coalesced_row_peak
from repro.joins.vectorized import ShardedColumnarFrame
from repro.query import catalog
from repro.semiring.faq import aggregate_acyclic
from repro.semiring.semirings import MIN_PLUS
from repro.util.rng import make_rng

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
CORES = os.cpu_count() or 1

STAR_M = 1_000 if SMOKE else 60_000  # per relation; total m = 2x
JOIN_ROWS = 2_000 if SMOKE else 200_000
SHARDS = 4
WORKERS = 4
# Threaded speedup floors, by how much hardware is actually there.
MIN_SPEEDUP_SMOKE = 1.2   # >= 2 cores (the CI runners)
MIN_SPEEDUP_FULL = 2.0    # >= 4 cores

STAR_QUERY = catalog.star_query_full(2, self_join_free=True)


def _star_rows(m, domain, seed):
    rng = make_rng(seed)
    return {
        name: [
            (rng.randrange(domain * 2), rng.randrange(domain))
            for _ in range(m)
        ]
        for name in ("R1", "R2")
    }


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _best_of(run, repeats):
    result, best = _timed(run)
    for _ in range(repeats - 1):
        result, elapsed = _timed(run)
        best = min(best, elapsed)
    return result, best


def _emit(workload, m, seconds):
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": workload,
                "backend": backend,
                "m": m,
                "seconds": value,
            }
            for backend, value in seconds.items()
        ],
    )


def test_a12_threaded_aggregation(benchmark, experiment_report):
    domain = max(STAR_M // 40, 3)
    rows = _star_rows(STAR_M, domain, seed=37)
    databases = {
        "serial": Database.from_dict(
            rows, backend="sharded", shard_count=SHARDS, workers=1
        ),
        "threaded": Database.from_dict(
            rows, backend="sharded", shard_count=SHARDS, workers=WORKERS
        ),
    }

    def suite(db):
        return (
            count_answers(STAR_QUERY, db),
            aggregate_acyclic(STAR_QUERY, db, MIN_PLUS),
        )

    def run():
        results, seconds = {}, {}
        for mode, db in databases.items():
            results[mode], seconds[mode] = _best_of(
                lambda db=db: suite(db), 1 if SMOKE else 3
            )
        return results, seconds

    results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["threaded"] == results["serial"]  # bit-identical
    speedup = seconds["serial"] / seconds["threaded"]
    if CORES >= 4 and not SMOKE:
        floor = MIN_SPEEDUP_FULL
    elif CORES >= 2:
        floor = MIN_SPEEDUP_SMOKE
    else:
        floor = None  # single-core host: parity is the whole claim
    experiment_report.row(
        f"count+min-plus q*_2, m={2 * STAR_M}, {SHARDS} shards, "
        f"{WORKERS} workers on {CORES} cores",
        "identical answers"
        + (f", >= {floor}x over serial" if floor else " (1 core)"),
        f"{speedup:.2f}x over serial (serial "
        f"{fmt_seconds(seconds['serial'])}, threaded "
        f"{fmt_seconds(seconds['threaded'])})",
    )
    _emit("parallel_aggregate", 2 * STAR_M, seconds)
    if floor is not None:
        assert speedup >= floor


def test_a12_co_partitioned_join(benchmark, experiment_report):
    rng = make_rng(41)
    domain = max(JOIN_ROWS // 50, 5)
    db = Database(backend="sharded", shard_count=SHARDS, workers=1)
    db.add_relation(
        db.new_relation(
            "R",
            2,
            [
                (rng.randrange(domain), rng.randrange(64))
                for _ in range(JOIN_ROWS)
            ],
        )
    )
    db.add_relation(
        db.new_relation(
            "S",
            2,
            [
                (rng.randrange(domain), rng.randrange(64))
                for _ in range(JOIN_ROWS // 2)
            ],
        )
    )
    # Both frames partitioned on the join variable "x" (key column 0).
    left = ShardedColumnarFrame.from_sharded_atom(db["R"], ("x", "y"))
    right = ShardedColumnarFrame.from_sharded_atom(db["S"], ("x", "z"))
    assert left._co_partitioned(right)
    # Renaming the build side's partition variable forces broadcast.
    broadcast_right = right.rename({"x": "x2"}).rename({"x2": "x"})

    def run():
        seconds = {}
        _, seconds["broadcast"] = _best_of(
            lambda: left.join(broadcast_right), 1 if SMOKE else 3
        )
        reset_coalesced_row_peak()
        joined, seconds["co_partitioned"] = _best_of(
            lambda: left.join(right), 1 if SMOKE else 3
        )
        peak = coalesced_row_peak()
        return joined, peak, seconds

    joined, peak, seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert peak == 0  # shard i met shard i; nothing was coalesced
    oracle = set(left.to_plain().join(right.to_plain()).rows)
    assert set(joined.rows) == oracle
    relative = seconds["broadcast"] / seconds["co_partitioned"]
    experiment_report.row(
        f"R(x,y) |x| S(x,z), m={JOIN_ROWS + JOIN_ROWS // 2}, "
        f"{SHARDS}x{SHARDS} shards",
        "identical rows, zero build-side coalesces",
        f"{relative:.2f}x vs broadcast (broadcast "
        f"{fmt_seconds(seconds['broadcast'])}, co-partitioned "
        f"{fmt_seconds(seconds['co_partitioned'])})",
    )
    _emit("co_partition_join", JOIN_ROWS + JOIN_ROWS // 2, seconds)


def test_a12_spilled_aggregation(benchmark, experiment_report):
    domain = max(STAR_M // 40, 3)
    rows = _star_rows(STAR_M, domain, seed=43)
    resident = Database.from_dict(
        rows, backend="sharded", shard_count=SHARDS
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-spill-") as tmp:
        spilled = Database.from_dict(
            rows,
            backend="sharded",
            shard_count=SHARDS,
            spill_dir=tmp,
            max_resident_shards=1,
        )
        assert spilled.spill.spilled_shards() >= SHARDS

        def suite(db):
            return (
                count_answers(STAR_QUERY, db),
                aggregate_acyclic(STAR_QUERY, db, MIN_PLUS),
            )

        def run():
            results, seconds = {}, {}
            for mode, db in (("resident", resident), ("spilled", spilled)):
                results[mode], seconds[mode] = _best_of(
                    lambda db=db: suite(db), 1 if SMOKE else 3
                )
            return results, seconds

        results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
        assert results["spilled"] == results["resident"]
        assert spilled.spill.resident_shards() <= 1  # budget held
        spilled_bytes = spilled.spill.spilled_bytes()
    relative = seconds["resident"] / seconds["spilled"]
    experiment_report.row(
        f"count+min-plus q*_2, m={2 * STAR_M}, {SHARDS} shards, "
        "1 resident",
        "identical answers with all but one shard memory-mapped",
        f"{relative:.2f}x of fully-resident ({spilled_bytes} bytes on "
        f"disk; resident {fmt_seconds(seconds['resident'])}, spilled "
        f"{fmt_seconds(seconds['spilled'])})",
    )
    _emit("spill_aggregate", 2 * STAR_M, seconds)
