"""Shared helpers for the experiment benches.

The paper's claims are about exponents, so the core helper times an
algorithm over a geometric ladder of input sizes and fits the slope on
log-log axes (see :mod:`repro.util.scaling`).  Absolute numbers are
machine-dependent and never asserted; *shapes* (who wins, roughly what
slope) are what the benches report and, where robust, assert loosely.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.util.scaling import ScalingFit, fit_scaling_exponent


def sweep(
    sizes: Sequence[int],
    make_input: Callable[[int], object],
    run: Callable[[object], object],
    repeats: int = 1,
) -> List[Tuple[int, float]]:
    """Time ``run(make_input(size))`` per size (input built off-clock)."""
    points: List[Tuple[int, float]] = []
    for size in sizes:
        payload = make_input(size)
        start = time.perf_counter()
        for _ in range(repeats):
            run(payload)
        elapsed = (time.perf_counter() - start) / repeats
        points.append((size, elapsed))
    return points


def fit(points: Iterable[Tuple[int, float]]) -> ScalingFit:
    return fit_scaling_exponent(list(points))


def fmt_fit(fit_result: ScalingFit) -> str:
    return (
        f"exponent {fit_result.exponent:.2f} "
        f"(R²={fit_result.r_squared:.3f})"
    )


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


# ----------------------------------------------------------------------
# perf-trajectory files
# ----------------------------------------------------------------------
def emit_perf_trajectory(
    name: str, entries: List[Dict], directory: "str | None" = None
) -> str:
    """Append one measurement run to ``BENCH_<name>.json``.

    The file holds a list of runs, each ``{"entries": [...]}`` where an
    entry records workload, backend, size and seconds.  Keeping every
    run (not just the latest) gives future PRs a perf *trajectory* to
    diff against, so a regression shows up as a trend break rather than
    being silently overwritten.  The history is capped to the most
    recent 50 runs to keep the file reviewable.
    """
    directory = directory or os.path.dirname(__file__)
    path = os.path.join(directory, f"BENCH_{name}.json")
    history: List[Dict] = []
    if os.path.exists(path):
        try:
            with open(path) as handle:
                history = json.load(handle)
        except (json.JSONDecodeError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append({"entries": entries})
    history = history[-50:]
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
