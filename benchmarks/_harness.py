"""Shared helpers for the experiment benches.

The paper's claims are about exponents, so the core helper times an
algorithm over a geometric ladder of input sizes and fits the slope on
log-log axes (see :mod:`repro.util.scaling`).  Absolute numbers are
machine-dependent and never asserted; *shapes* (who wins, roughly what
slope) are what the benches report and, where robust, assert loosely.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.util.scaling import ScalingFit, fit_scaling_exponent


def sweep(
    sizes: Sequence[int],
    make_input: Callable[[int], object],
    run: Callable[[object], object],
    repeats: int = 1,
) -> List[Tuple[int, float]]:
    """Time ``run(make_input(size))`` per size (input built off-clock)."""
    points: List[Tuple[int, float]] = []
    for size in sizes:
        payload = make_input(size)
        start = time.perf_counter()
        for _ in range(repeats):
            run(payload)
        elapsed = (time.perf_counter() - start) / repeats
        points.append((size, elapsed))
    return points


def fit(points: Iterable[Tuple[int, float]]) -> ScalingFit:
    return fit_scaling_exponent(list(points))


def fmt_fit(fit_result: ScalingFit) -> str:
    return (
        f"exponent {fit_result.exponent:.2f} "
        f"(R²={fit_result.r_squared:.3f})"
    )


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"
