"""E3 — Proposition 3.3: triangle finding through cyclic CQs.

Measures (a) that the reduction's database is linear in the graph, and
(b) that deciding the target query on the reduced instance tracks the
cost of the underlying triangle problem — i.e. the reduction transfers
hardness without polynomial blow-up.
"""

import pytest

from repro.query import catalog
from repro.reductions import TriangleToCyclicCQ
from repro.workloads import triangle_free_graph

from benchmarks._harness import fit, fmt_fit, sweep

TARGETS = {
    "4-cycle": catalog.cycle_query(4, boolean=True),
    "5-cycle": catalog.cycle_query(5, boolean=True),
}


def test_e3_database_linear_in_graph(benchmark, experiment_report):
    reduction = TriangleToCyclicCQ(TARGETS["5-cycle"])

    def run():
        rows = []
        for m in (1000, 2000, 4000, 8000):
            graph = triangle_free_graph(max(m // 10, 6), m, seed=m)
            db = reduction.build_database(graph)
            rows.append((m + graph.number_of_nodes(), db.size()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    growth = fit(rows)  # database size as a function of graph size
    experiment_report.row(
        "reduced DB size vs graph size (5-cycle target)",
        "size(D) = O(|V| + |E|), exponent 1",
        fmt_fit(growth),
    )
    assert growth.within(1.0, 0.15)


def test_e3_end_to_end_scaling(benchmark, experiment_report):
    reduction = TriangleToCyclicCQ(TARGETS["4-cycle"])

    def decide(graph):
        return reduction.decide_triangle(graph)

    def run():
        points = sweep(
            [500, 1000, 2000, 4000],
            lambda m: triangle_free_graph(max(m // 10, 6), m, seed=m),
            decide,
        )
        return fit(points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "decide triangle via 4-cycle query",
        "linear-time q°4 would give linear triangles",
        fmt_fit(result),
    )


def test_e3_single_reduction_benchmark(benchmark):
    reduction = TriangleToCyclicCQ(TARGETS["4-cycle"])
    graph = triangle_free_graph(500, 4000, seed=3, plant_triangle=True)
    assert benchmark(lambda: reduction.decide_triangle(graph))
