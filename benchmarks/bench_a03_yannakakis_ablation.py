"""A3 (ablation) — what the semijoin reduction buys Yannakakis.

The full reducer is the difference between output-sensitive and
blow-up-prone evaluation: without it, joining along the tree can
materialize tuples that die later.  We build skewed instances where
most of R1 survives no join and compare full evaluation with and
without the reducer passes, plus the meet-in-the-middle vs generic
evaluation of cycle queries (the combinatorial baseline of Sec 4.1.1).
"""

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.hypergraph.gyo import join_tree
from repro.joins import (
    cycle_boolean_generic,
    cycle_boolean_meet_in_middle,
    yannakakis_full,
)
from repro.joins.frame import Frame
from repro.joins.semijoin import atom_frames
from repro.query import catalog
from repro.workloads import random_database

from benchmarks._harness import fit, fmt_fit, fmt_seconds, sweep

PATH = catalog.path_query(3)


def dead_end_db(m):
    """Hub data whose R1⋈R2 blows up quadratically and then dies.

    R1 fans m tuples into 4 hubs, R2 fans the hubs out to m/4 targets
    (so R1 ⋈ R2 has ~m²/4 tuples), and R3 matches none of them.  The
    full reducer notices the death in O(m); joining without it pays
    the quadratic intermediate first.
    """
    db = Database()
    hubs = 4
    db.add_relation(
        Relation("R1", 2, ((("a", i), i % hubs) for i in range(m)))
    )
    db.add_relation(
        Relation(
            "R2",
            2,
            ((h, ("b", j)) for h in range(hubs) for j in range(m // hubs)),
        )
    )
    db.add_relation(Relation("R3", 2, [(("dead", 0), ("dead", 1))]))
    return db


def join_without_reducer(db):
    """Bottom-up joins along the tree with no semijoin passes."""
    tree = join_tree(PATH.hypergraph())
    frames = dict(enumerate(atom_frames(PATH, db)))
    for node in tree.bottom_up():
        parent = tree.parent.get(node)
        if parent is not None:
            frames[parent] = frames[parent].join(frames[node])
    result = Frame.unit()
    for root in tree.roots:
        result = result.join(frames[root])
    return result


def test_a3_reducer_vs_no_reducer(benchmark, experiment_report):
    import time

    db = dead_end_db(2000)  # without the reducer: ~1M-tuple intermediate

    def run():
        start = time.perf_counter()
        with_reducer = yannakakis_full(PATH, db)
        reduced_time = time.perf_counter() - start
        start = time.perf_counter()
        without = join_without_reducer(db)
        raw_time = time.perf_counter() - start
        assert with_reducer.to_tuples(PATH.head) == without.to_tuples(
            PATH.head
        )
        return reduced_time, raw_time

    reduced_time, raw_time = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "Yannakakis with vs without the full reducer (dead-end data)",
        "reducer keeps intermediates output-sized",
        f"with {fmt_seconds(reduced_time)}, without {fmt_seconds(raw_time)}",
    )
    assert reduced_time < raw_time


def test_a3_cycle_evaluators(benchmark, experiment_report):
    def run():
        fits = {}
        for name, algo in (
            ("meet-in-the-middle", cycle_boolean_meet_in_middle),
            ("generic join", cycle_boolean_generic),
        ):
            query = catalog.cycle_query(4, boolean=True)
            points = sweep(
                [1000, 2000, 4000],
                lambda m: random_database(query, m, max(m // 12, 4), seed=m),
                lambda db, a=algo: a(db, 4),
            )
            fits[name] = fit(points)
        return fits

    fits = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, result in fits.items():
        experiment_report.row(
            f"Boolean 4-cycle via {name}",
            "Õ(m²) combinatorial vs Õ(m²) AGM (random data easier)",
            fmt_fit(result),
        )
