"""A14 — frontier-vectorized Generic Join and fused semiring kernels.

PR 10's hot-path rewrite, measured three ways:

- **frontier vs recursive Generic Join** — the triangle query over a
  sparse random instance and the 4-clique query over a planted-clique
  graph, answered at the code level (``generic_join_codes``, asserted
  zero decodes via ``decoded_row_count``) vs the legacy depth-first
  path (``REPRO_FRONTIER=0``).  Sparse inputs are the adversarial
  case for the recursive path: many prefixes with small candidate
  sets, so the per-prefix Python overhead dominates.  Answers are
  asserted *identical* after decoding, and the frontier path must
  clear a >= 5x floor at full size.
- **fused vs chained FAQ messages** — counting + tropical aggregation
  of a two-atom chain with ``REPRO_FAQ_FUSED`` toggled: the fused
  group-lookup's peak scratch (``scratch_peak``) must stay at the
  *distinct-key* count, not the full frame size the chained
  group_reduce -> gather pipeline allocates.
- **numba vs NumPy kernels** — the same FAQ suite under
  ``REPRO_KERNELS=numba`` vs ``numpy``, identical answers; skipped
  gracefully when numba is not importable (it is an optional
  accelerator, never a dependency).

Timings append to ``benchmarks/BENCH_backends.json`` for the perf
trajectory.  Set ``BENCH_SMOKE=1`` for tiny sizes with the speedup
floors relaxed (parity, zero-decode, and peak-scratch assertions
always run; CI wires this into the bench-smoke matrix).
"""

import os
import time

import pytest

from repro.db import Database
from repro.db.columnar import (
    decoded_row_count,
    reset_decoded_row_count,
    reset_scratch_peak,
    scratch_peak,
)
from repro.joins.generic_join import generic_join, generic_join_codes
from repro.query.catalog import clique_query, triangle_query
from repro.query.parser import parse_query
from repro.semiring import kernels as kernel_mod
from repro.semiring.faq import aggregate_acyclic
from repro.semiring.semirings import COUNTING, MIN_PLUS
from repro.util.rng import make_rng
from repro.workloads import random_triangle_db

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

TRIANGLE_M = 2_000 if SMOKE else 30_000
CLIQUE_N = 1_500 if SMOKE else 30_000
CLIQUE_M = 5_000 if SMOKE else 90_000
PLANTED_K4 = 5 if SMOKE else 50
FAQ_ROWS = 2_000 if SMOKE else 200_000
FAQ_KEYS = 50 if SMOKE else 1_000
MIN_SPEEDUP = 5.0  # full-size floor for frontier vs recursive

CHAIN = parse_query("q(a, b, c) :- R(a, b), S(b, c)")


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _best_of(run, repeats):
    result, best = _timed(run)
    for _ in range(repeats - 1):
        result, elapsed = _timed(run)
        best = min(best, elapsed)
    return result, best


def _emit(workload, m, seconds):
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": workload,
                "backend": backend,
                "m": m,
                "seconds": value,
            }
            for backend, value in seconds.items()
        ],
    )


def _with_env(name, value, run):
    """Run ``run()`` with ``name=value`` in the environment, then restore."""
    saved = os.environ.get(name)
    os.environ[name] = value
    try:
        return run()
    finally:
        if saved is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = saved


def _planted_clique_graph(n, m, planted, seed=11):
    """A sparse symmetric edge set with ``planted`` disjoint K4s.

    The random bulk keeps the average degree tiny (the recursive
    path's worst case: per-prefix Python work with nothing to
    amortize it over); the planted cliques keep the output nonempty
    so the parity check is not vacuous.
    """
    rng = make_rng(seed)
    edges = set()
    for p in range(planted):
        vertices = [n + 4 * p + i for i in range(4)]
        for a in vertices:
            for b in vertices:
                if a != b:
                    edges.add((a, b))
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
            edges.add((b, a))
    return Database.from_dict({"E": sorted(edges)}, backend="columnar")


def _frontier_vs_recursive(query, db, relation):
    """(decoded answer sets, seconds) for the frontier and legacy paths."""
    reset_decoded_row_count()
    coded, frontier_secs = _best_of(
        lambda: generic_join_codes(query, db), 1 if SMOKE else 3
    )
    assert coded is not None
    assert decoded_row_count() == 0  # codes stay codes end to end
    codes, _head = coded
    decoded = set(db[relation].dictionary.decode_rows(codes))
    recursive, recursive_secs = _with_env(
        "REPRO_FRONTIER",
        "0",
        lambda: _best_of(lambda: generic_join(query, db), 1 if SMOKE else 3),
    )
    return decoded, set(recursive), {
        "frontier": frontier_secs,
        "recursive": recursive_secs,
    }


def test_a14_triangle_frontier(benchmark, experiment_report):
    query = triangle_query(boolean=False)
    db = random_triangle_db(
        TRIANGLE_M, max(TRIANGLE_M // 60, 3), seed=7, backend="columnar"
    )
    decoded, recursive, seconds = benchmark.pedantic(
        lambda: _frontier_vs_recursive(query, db, "R1"),
        rounds=1,
        iterations=1,
    )
    assert decoded == recursive  # bit-identical answer sets
    speedup = seconds["recursive"] / seconds["frontier"]
    experiment_report.row(
        f"triangle materialize, m={TRIANGLE_M}, {len(decoded)} answers",
        "identical answers, zero decodes"
        + ("" if SMOKE else f", >= {MIN_SPEEDUP}x over recursive"),
        f"{speedup:.2f}x over recursive (recursive "
        f"{fmt_seconds(seconds['recursive'])}, frontier "
        f"{fmt_seconds(seconds['frontier'])})",
    )
    _emit("frontier_triangle", TRIANGLE_M, seconds)
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP


def test_a14_clique_frontier(benchmark, experiment_report):
    query = clique_query(4)
    db = _planted_clique_graph(CLIQUE_N, CLIQUE_M, PLANTED_K4)
    decoded, recursive, seconds = benchmark.pedantic(
        lambda: _frontier_vs_recursive(query, db, "E"),
        rounds=1,
        iterations=1,
    )
    assert decoded == recursive
    assert len(decoded) >= PLANTED_K4 * 24  # each K4 yields 4! answers
    speedup = seconds["recursive"] / seconds["frontier"]
    experiment_report.row(
        f"4-clique, {CLIQUE_M} edges, {len(decoded)} answers",
        "identical answers, zero decodes"
        + ("" if SMOKE else f", >= {MIN_SPEEDUP}x over recursive"),
        f"{speedup:.2f}x over recursive (recursive "
        f"{fmt_seconds(seconds['recursive'])}, frontier "
        f"{fmt_seconds(seconds['frontier'])})",
    )
    _emit("frontier_clique4", CLIQUE_M, seconds)
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP


def _chain_db():
    rows = {
        "R": [(i, i % FAQ_KEYS) for i in range(FAQ_ROWS)],
        "S": [(i % FAQ_KEYS, i) for i in range(FAQ_ROWS)],
    }
    return Database.from_dict(rows, backend="columnar")


def _faq_suite(db):
    return (
        aggregate_acyclic(CHAIN, db, COUNTING),
        aggregate_acyclic(CHAIN, db, MIN_PLUS),
    )


def test_a14_fused_faq(benchmark, experiment_report):
    db = _chain_db()

    def run():
        results, seconds, peaks = {}, {}, {}
        for mode, env in (("fused", "1"), ("chained", "0")):
            reset_scratch_peak()
            results[mode], seconds[mode] = _with_env(
                "REPRO_FAQ_FUSED",
                env,
                lambda: _best_of(lambda: _faq_suite(db), 1 if SMOKE else 3),
            )
            peaks[mode] = scratch_peak()
        return results, seconds, peaks

    results, seconds, peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["fused"] == results["chained"]  # exact scalars
    # The fused kernel's scratch is bounded by the distinct join keys;
    # the chained pipeline materializes a full-frame intermediate.
    assert peaks["fused"] <= FAQ_KEYS
    assert peaks["chained"] >= FAQ_ROWS
    experiment_report.row(
        f"count+min-plus chain FAQ, m={2 * FAQ_ROWS}, {FAQ_KEYS} keys",
        f"identical scalars, fused scratch <= {FAQ_KEYS} "
        f"vs chained >= {FAQ_ROWS}",
        f"fused peak {peaks['fused']} vs chained {peaks['chained']} "
        f"(fused {fmt_seconds(seconds['fused'])}, chained "
        f"{fmt_seconds(seconds['chained'])})",
    )
    _emit("faq_fused", 2 * FAQ_ROWS, seconds)


def test_a14_kernel_backends(benchmark, experiment_report):
    if kernel_mod.numba is None:
        experiment_report.note(
            "numba kernels: skipped (numba not importable; NumPy "
            "reduceat path is the only backend on this host)"
        )
        pytest.skip("numba not installed; NumPy kernel path covered above")
    db = _chain_db()

    def run():
        results, seconds = {}, {}
        for mode in ("numba", "numpy"):
            results[mode], seconds[mode] = _with_env(
                "REPRO_KERNELS",
                mode,
                lambda: _best_of(lambda: _faq_suite(db), 1 if SMOKE else 3),
            )
        return results, seconds

    results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["numba"] == results["numpy"]
    experiment_report.row(
        f"count+min-plus chain FAQ, m={2 * FAQ_ROWS}, numba kernels",
        "identical scalars",
        f"numba {fmt_seconds(seconds['numba'])} vs numpy "
        f"{fmt_seconds(seconds['numpy'])}",
    )
    _emit("faq_kernels", 2 * FAQ_ROWS, seconds)
