"""A10 — the durability subsystem's two costs.

Durability (PR 6) must be cheap in the two places it touches the hot
path, and those costs are asserted, not eyeballed:

- **op-log append overhead** — batched ingestion into a durable
  columnar database (every ``add_all`` mirrored into the framed,
  CRC-checksummed WAL under the default ``sync="batch"`` policy) vs
  the same ingestion in memory.  The WAL writes one record per batch
  — the append is a pickle + buffered write, amortized across the
  batch — so durable ingestion is asserted to cost at most **1.2x**
  the in-memory run.  Per-op appends (single-tuple ``add``) are also
  measured and reported: there the pickle/frame cost is *not*
  amortized, which is exactly why the ingest idiom is batched.
- **warm restart** — reopening from a committed checkpoint
  (``np.load`` of compact code columns + dictionary unpickle + WAL
  suffix replay) vs a cold rebuild that re-encodes every raw row
  through the value dictionary.  The checkpoint stores *codes*, so
  restart skips per-value hashing entirely and is asserted **>= 5x**
  faster than the cold rebuild.

Both runs verify bit-identical recovered content before timing is
trusted.  Timings append to ``benchmarks/BENCH_backends.json`` for
the perf trajectory.  Set ``BENCH_SMOKE=1`` for tiny sizes with the
speed assertions skipped (the parity assertions always run; CI wires
this into the bench-smoke matrix).
"""

import os
import shutil
import time

from repro.db import Database, attach
from repro.util.rng import make_rng

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

INGEST_ROWS = 2_000 if SMOKE else 100_000
BATCH_ROWS = 1_000
RESTART_ROWS = 5_000 if SMOKE else 200_000
# Durable batched ingestion may cost at most this much of in-memory.
MAX_RELATIVE_OVERHEAD = 1.2
# Warm restart must beat the cold re-encoding rebuild by this factor.
MIN_RESTART_SPEEDUP = 5.0


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _emit(workload, m, seconds):
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": workload,
                "backend": backend,
                "m": m,
                "seconds": value,
            }
            for backend, value in seconds.items()
        ],
    )


def _ingest_rows(n):
    rng = make_rng(41)
    return [
        (rng.randrange(n), rng.randrange(1024)) for _ in range(n)
    ]


def test_a10_oplog_append_overhead(
    benchmark, experiment_report, tmp_path
):
    rows = _ingest_rows(INGEST_ROWS)
    batches = [
        rows[i : i + BATCH_ROWS]
        for i in range(0, len(rows), BATCH_ROWS)
    ]
    single_ops = rows[: max(len(rows) // 5, 1)]

    def ingest_memory():
        db = Database(backend="columnar")
        relation = db.ensure_relation("R", 2)
        for batch in batches:
            relation.add_all(batch)
        return db

    def ingest_durable(root):
        if os.path.exists(root):
            shutil.rmtree(root)
        db = attach(root, backend="columnar", sync="batch")
        relation = db.ensure_relation("R", 2)
        for batch in batches:
            relation.add_all(batch)
        db.close()
        return db

    def single_op_seconds(make_relation, cleanup=None):
        relation = make_relation()
        start = time.perf_counter()
        for row in single_ops:
            relation.add(row)
        elapsed = time.perf_counter() - start
        if cleanup is not None:
            cleanup()
        return elapsed

    def run():
        # Best-of-3: the overhead assertion should compare
        # steady-state ingestion, not allocator warm-up effects.
        seconds, built = {}, {}
        for _ in range(1 if SMOKE else 3):
            db, elapsed = _timed(ingest_memory)
            built["memory"] = db
            seconds["memory"] = min(
                seconds.get("memory", elapsed), elapsed
            )
            db, elapsed = _timed(
                lambda: ingest_durable(str(tmp_path / "wal-bench"))
            )
            built["durable"] = db
            seconds["durable"] = min(
                seconds.get("durable", elapsed), elapsed
            )
        return built, seconds

    built, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    # parity first: the WAL-backed run holds the same content, and so
    # does its recovery
    assert built["durable"]["R"].rows() == built["memory"]["R"].rows()
    recovered = attach(str(tmp_path / "wal-bench"))
    assert recovered["R"].rows() == built["memory"]["R"].rows()
    recovered.close()

    relative = seconds["durable"] / seconds["memory"]
    experiment_report.row(
        f"durable batched ingest, {INGEST_ROWS} rows",
        f"identical content, <= {MAX_RELATIVE_OVERHEAD}x in-memory",
        f"{relative:.2f}x of in-memory (memory "
        f"{fmt_seconds(seconds['memory'])}, durable "
        f"{fmt_seconds(seconds['durable'])})",
    )

    durable_dir = str(tmp_path / "wal-single")
    durable_db = attach(durable_dir, backend="columnar", sync="batch")
    per_op = {
        "memory": single_op_seconds(
            lambda: Database(backend="columnar").ensure_relation("R", 2)
        ),
        "durable": single_op_seconds(
            lambda: durable_db.ensure_relation("R", 2),
            cleanup=durable_db.close,
        ),
    }
    experiment_report.row(
        f"durable single-op appends, {len(single_ops)} ops",
        "reported (unamortized pickle+frame per op)",
        f"{per_op['durable'] / per_op['memory']:.2f}x of in-memory "
        f"(memory {fmt_seconds(per_op['memory'])}, durable "
        f"{fmt_seconds(per_op['durable'])})",
    )
    _emit("durable_ingest", INGEST_ROWS, seconds)
    if not SMOKE:
        assert relative <= MAX_RELATIVE_OVERHEAD


def test_a10_warm_restart(benchmark, experiment_report, tmp_path):
    # String values: encoding hashes every value through the
    # dictionary, which is precisely the work the checkpoint's stored
    # codes let the warm path skip.
    rng = make_rng(43)
    rows = [
        (
            f"user-{rng.randrange(max(RESTART_ROWS // 4, 10))}",
            f"item-{rng.randrange(4096)}",
        )
        for _ in range(RESTART_ROWS)
    ]
    root = str(tmp_path / "restart-bench")
    db = attach(root, backend="columnar", sync="batch")
    db.ensure_relation("R", 2).add_all(rows)
    db.checkpoint()
    db.close()

    def cold_rebuild():
        return Database.from_dict({"R": rows}, backend="columnar")

    def warm_restart():
        recovered = attach(root)
        recovered.close()
        return recovered

    def run():
        seconds = {}
        for _ in range(1 if SMOKE else 3):
            _, elapsed = _timed(cold_rebuild)
            seconds["cold"] = min(seconds.get("cold", elapsed), elapsed)
            _, elapsed = _timed(warm_restart)
            seconds["warm"] = min(seconds.get("warm", elapsed), elapsed)
        return seconds

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    # parity: the warm path recovered exactly the ingested content
    recovered = attach(root)
    assert recovered["R"].rows() == cold_rebuild()["R"].rows()
    assert recovered.checkpoint_index == 1
    recovered.close()

    speedup = seconds["cold"] / seconds["warm"]
    experiment_report.row(
        f"warm restart, {RESTART_ROWS} rows from checkpoint",
        f"identical content, >= {MIN_RESTART_SPEEDUP}x vs cold rebuild",
        f"{speedup:.1f}x (cold {fmt_seconds(seconds['cold'])}, "
        f"warm {fmt_seconds(seconds['warm'])})",
    )
    _emit("durable_restart", RESTART_ROWS, seconds)
    if not SMOKE:
        assert speedup >= MIN_RESTART_SPEEDUP
