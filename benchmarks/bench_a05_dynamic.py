"""A5 — dynamic evaluation ([15], survey conclusion): constant-time
updates for q-hierarchical queries.

Measures that the per-update cost of the hierarchical count maintainer
stays flat as the maintained database grows, against recompute-from-
scratch whose per-update cost is Θ(m).
"""

import time

import pytest

from repro.counting import count_answers
from repro.dynamic import HierarchicalCountMaintainer
from repro.query import catalog
from repro.workloads import random_database

from benchmarks._harness import fit, fmt_fit

QUERY = catalog.star_query_full(2, self_join_free=True)


def test_a5_update_cost_flat(benchmark, experiment_report):
    sizes = [2000, 4000, 8000, 16000]

    def run():
        incremental = []
        recompute = []
        for m in sizes:
            db = random_database(QUERY, m, max(m // 20, 4), seed=m)
            maintainer = HierarchicalCountMaintainer(QUERY)
            maintainer.load(db)
            probes = [(("p", i), ("hub", i % 7)) for i in range(200)]
            start = time.perf_counter()
            for row in probes:
                maintainer.insert("R1", row)
                maintainer.count()
                maintainer.delete("R1", row)
            incremental.append(
                (m, (time.perf_counter() - start) / (len(probes) * 2))
            )
            start = time.perf_counter()
            count_answers(QUERY, db)
            recompute.append((m, time.perf_counter() - start))
        return incremental, recompute

    incremental, recompute = benchmark.pedantic(run, rounds=1, iterations=1)
    inc_fit = fit(incremental)
    experiment_report.row(
        "per-update cost, q-hierarchical maintainer",
        "O(1) per update ([15])",
        fmt_fit(inc_fit)
        + f"; {incremental[-1][1] * 1e6:.1f}µs at m={sizes[-1]}",
    )
    assert inc_fit.exponent < 0.5  # flat, not growing with m
    experiment_report.row(
        "recompute-from-scratch per update",
        "Θ(m) per update",
        fmt_fit(fit(recompute)),
    )


def test_a5_single_update_benchmark(benchmark):
    db = random_database(QUERY, 20000, 1000, seed=1)
    maintainer = HierarchicalCountMaintainer(QUERY)
    maintainer.load(db)
    state = {"flip": False}

    def toggle():
        if state["flip"]:
            maintainer.delete("R1", ("probe", "hub"))
        else:
            maintainer.insert("R1", ("probe", "hub"))
        state["flip"] = not state["flip"]
        return maintainer.count()

    benchmark(toggle)
