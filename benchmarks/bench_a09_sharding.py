"""A9 — the sharded columnar substrate.

PR 5's partitioned execution path, measured two ways:

- **batched ingestion** — ``add_all`` of one large batch into a
  sharded database (encode once, one vectorized hash-routing pass,
  per-shard code-batch adoption) vs the single-matrix columnar
  backend.  Routing costs one extra pass, so sharded ingestion is
  asserted to stay within 0.8x of unsharded throughput.
- **merge-based aggregation** — counting and tropical aggregation of
  an acyclic join query: one (separator codes, weight column) FAQ
  message per shard, merged by ``group_reduce`` over the
  concatenation.  Asserted byte-identical to the unsharded columnar
  and python backends, within 0.8x of unsharded columnar speed on
  these merge-bound shapes, and — the structural promise — with
  **zero cross-shard coalesces** (``coalesced_row_peak``) and **zero
  row decodes** (``decoded_row_count``): no global array larger than
  one shard plus the merged separator domain is ever materialized.

Timings append to ``benchmarks/BENCH_backends.json`` for the perf
trajectory.  Set ``BENCH_SMOKE=1`` for tiny sizes with the speed
assertions skipped (parity and the zero-materialization assertions
always run; CI wires this into the bench-smoke matrix).
"""

import os
import time

from repro.counting import count_answers
from repro.db import Database
from repro.db.columnar import decoded_row_count, reset_decoded_row_count
from repro.db.sharded import coalesced_row_peak, reset_coalesced_row_peak
from repro.query import catalog
from repro.semiring.faq import aggregate_acyclic
from repro.semiring.semirings import MIN_PLUS
from repro.util.rng import make_rng

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

STAR_M = 1_000 if SMOKE else 60_000  # per relation; total m = 2x
INGEST_ROWS = 2_000 if SMOKE else 400_000
SHARDS = 4
# Sharded must retain at least this fraction of unsharded throughput.
MIN_RELATIVE_THROUGHPUT = 0.8

STAR_QUERY = catalog.star_query_full(2, self_join_free=True)


def _star_rows(m, domain, seed):
    rng = make_rng(seed)
    return {
        name: [
            (rng.randrange(domain * 2), rng.randrange(domain))
            for _ in range(m)
        ]
        for name in ("R1", "R2")
    }


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _emit(workload, m, seconds):
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": workload,
                "backend": backend,
                "m": m,
                "seconds": value,
            }
            for backend, value in seconds.items()
        ],
    )


def test_a9_batched_ingestion(benchmark, experiment_report):
    rng = make_rng(29)
    rows = [
        (rng.randrange(INGEST_ROWS), rng.randrange(1024))
        for _ in range(INGEST_ROWS)
    ]

    def ingest(backend):
        db = Database(
            backend=backend,
            shard_count=SHARDS if backend == "sharded" else None,
        )
        relation = db.ensure_relation("R", 2)
        relation.add_all(rows)
        return db

    def run():
        # Best-of-3 per backend: the ratio assertion should compare
        # steady-state ingestion, not allocator warm-up effects.
        seconds = {}
        databases = {}
        for backend in ("columnar", "sharded"):
            for _ in range(1 if SMOKE else 3):
                built, elapsed = _timed(
                    lambda backend=backend: ingest(backend)
                )
                databases[backend] = built
                seconds[backend] = min(
                    seconds.get(backend, elapsed), elapsed
                )
        return databases, seconds

    databases, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    sharded = databases["sharded"]["R"]
    assert sharded.rows() == databases["columnar"]["R"].rows()
    assert sum(sharded.shard_sizes()) == len(sharded)
    assert sum(size > 0 for size in sharded.shard_sizes()) > 1
    relative = seconds["columnar"] / seconds["sharded"]
    experiment_report.row(
        f"batched ingestion, {INGEST_ROWS} rows x {SHARDS} shards",
        f"identical content, >= {MIN_RELATIVE_THROUGHPUT}x throughput",
        f"{relative:.2f}x of unsharded (columnar "
        f"{fmt_seconds(seconds['columnar'])}, sharded "
        f"{fmt_seconds(seconds['sharded'])})",
    )
    _emit("shard_ingest", INGEST_ROWS, seconds)
    if not SMOKE:
        assert relative >= MIN_RELATIVE_THROUGHPUT


def test_a9_merge_based_aggregation(benchmark, experiment_report):
    domain = max(STAR_M // 40, 3)
    rows = _star_rows(STAR_M, domain, seed=31)
    databases = {
        "python": Database.from_dict(rows, backend="python"),
        "columnar": Database.from_dict(rows, backend="columnar"),
        "sharded": Database.from_dict(
            rows, backend="sharded", shard_count=SHARDS
        ),
    }
    for relation in databases["sharded"]:
        assert sum(size > 0 for size in relation.shard_sizes()) > 1

    def run():
        # Best-of-3 per backend: the ratio assertion should compare
        # steady-state array programs, not first-touch cache effects.
        results, seconds = {}, {}
        for backend in ("columnar", "sharded"):
            db = databases[backend]
            for _ in range(1 if SMOKE else 3):
                result, elapsed = _timed(
                    lambda db=db: (
                        count_answers(STAR_QUERY, db),
                        aggregate_acyclic(STAR_QUERY, db, MIN_PLUS),
                    )
                )
                results[backend] = result
                seconds[backend] = min(
                    seconds.get(backend, elapsed), elapsed
                )
        return results, seconds

    reset_coalesced_row_peak()
    reset_decoded_row_count()
    results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    # The structural promise: the sharded aggregate path coalesced no
    # shards into a global matrix and decoded no rows.
    assert coalesced_row_peak() == 0
    assert decoded_row_count() == 0
    oracle = (
        count_answers(STAR_QUERY, databases["python"]),
        aggregate_acyclic(STAR_QUERY, databases["python"], MIN_PLUS),
    )
    assert results["sharded"] == results["columnar"] == oracle
    relative = seconds["columnar"] / seconds["sharded"]
    experiment_report.row(
        f"count+min-plus q*_2, m={2 * STAR_M}, {SHARDS} shards",
        "identical answers, zero global materializations, "
        f">= {MIN_RELATIVE_THROUGHPUT}x",
        f"{relative:.2f}x of unsharded (columnar "
        f"{fmt_seconds(seconds['columnar'])}, sharded "
        f"{fmt_seconds(seconds['sharded'])})",
    )
    _emit("shard_aggregate", 2 * STAR_M, seconds)
    if not SMOKE:
        assert relative >= MIN_RELATIVE_THROUGHPUT
