"""Benchmark-suite plumbing.

Every experiment bench records human-readable "paper vs measured" rows
through the ``experiment_report`` fixture.  The rows are printed in the
terminal summary (so they survive pytest's output capture) and written
to ``benchmarks/experiment_results.txt`` for EXPERIMENTS.md.
"""

import os
from typing import List

import pytest

_ROWS: List[str] = []
_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "experiment_results.txt")


class ExperimentReport:
    """Collects one experiment's rows with a uniform format."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment

    def row(self, label: str, paper: str, measured: str) -> None:
        _ROWS.append(
            f"{self.experiment:<6} {label:<46} paper: {paper:<34} "
            f"measured: {measured}"
        )

    def note(self, text: str) -> None:
        _ROWS.append(f"{self.experiment:<6} {text}")


@pytest.fixture
def experiment_report(request):
    """Per-test report handle; the experiment id is the module's E-tag."""
    module = request.module.__name__
    tag = module.split("_")[1] if "_" in module else module
    return ExperimentReport(tag.upper())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ROWS:
        return
    terminalreporter.write_sep("=", "experiment results (paper vs measured)")
    for row in _ROWS:
        terminalreporter.write_line(row)
    with open(_RESULTS_PATH, "w") as handle:
        handle.write("\n".join(_ROWS) + "\n")
    terminalreporter.write_line(f"(written to {_RESULTS_PATH})")
