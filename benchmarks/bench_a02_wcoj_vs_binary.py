"""A2 (ablation) — worst-case-optimal join vs binary join plans.

The motivation for worst-case-optimal joins (paper Section 2.1), in
two instances:

- the *bowtie*: R1 = A×{h}, R2 = {h}×C, R3 empty of matches — a binary
  plan that starts R1 ⋈ R2 materializes Θ(m²) tuples that all die,
  while the generic join never builds them;
- the AGM-tight triangle instance, where every evaluator must pay the
  Θ(m^{3/2}) output and the binary plan's largest intermediate is
  exactly output-sized (no separation — the separation needs skew).
"""

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.joins import generic_join, left_deep_plan_join
from repro.joins.hashjoin import plan_intermediate_sizes
from repro.query import catalog
from repro.workloads import agm_tight_triangle_db

from benchmarks._harness import fit, fmt_fit, fmt_seconds, sweep

QUERY = catalog.triangle_query(boolean=False)
FORCED_ORDER = (0, 1, 2)  # join R1 with R2 first — the bad plan


def bowtie_db(m):
    """Skewed instance: quadratic R1⋈R2, empty final output."""
    half = max(m // 2, 1)
    db = Database()
    db.add_relation(Relation("R1", 2, ((("a", i), "hub") for i in range(half))))
    db.add_relation(Relation("R2", 2, (("hub", ("c", j)) for j in range(half))))
    # R3(z, x) pairs that never match the (c, a) combinations above.
    db.add_relation(Relation("R3", 2, [(("dead", 0), ("dead", 1))]))
    return db


def test_a2_bowtie_separation(benchmark, experiment_report):
    sizes = [400, 800, 1600]

    def run():
        wcoj = fit(
            sweep(
                [4000, 8000, 16000, 32000],
                bowtie_db,
                lambda db: generic_join(QUERY, db),
            )
        )
        binary = fit(
            sweep(
                sizes,
                bowtie_db,
                lambda db: left_deep_plan_join(QUERY, db, order=FORCED_ORDER),
            )
        )
        return wcoj, binary

    wcoj, binary = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "generic join on bowtie instances (empty output)",
        "never materializes the dead m²/4 pairs",
        fmt_fit(wcoj),
    )
    experiment_report.row(
        "binary plan R1⋈R2 first, same instances",
        "Θ(m²) doomed intermediate",
        fmt_fit(binary),
    )
    assert binary.exponent > wcoj.exponent + 0.5


def test_a2_bowtie_intermediate_accounting(benchmark, experiment_report):
    def run():
        rows = []
        for m in (400, 800, 1600):
            db = bowtie_db(m)
            sizes = plan_intermediate_sizes(QUERY, db, order=FORCED_ORDER)
            rows.append((m, max(sizes)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for m, peak in rows:
        assert peak == (m // 2) ** 2  # exactly the quadratic cross pairs
    experiment_report.row(
        "largest binary-plan intermediate on bowties",
        "exactly (m/2)² tuples, all dead",
        fmt_fit(fit(rows)),
    )


def test_a2_agm_tight_no_separation(benchmark, experiment_report):
    """On tight instances everyone pays the output; the binary plan's
    peak intermediate equals the output size m^{3/2}."""
    def run():
        wcoj = fit(
            sweep(
                [400, 800, 1600, 3200],
                agm_tight_triangle_db,
                lambda db: generic_join(QUERY, db),
            )
        )
        peak_rows = []
        for m in (400, 900, 1600):
            db = agm_tight_triangle_db(m)
            peak_rows.append((m, max(plan_intermediate_sizes(QUERY, db))))
        return wcoj, fit(peak_rows)

    wcoj, peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        "generic join on AGM-tight triangles",
        "Θ(m^{3/2}) = output size",
        fmt_fit(wcoj),
    )
    experiment_report.row(
        "binary-plan peak intermediate on AGM-tight",
        "m^{3/2} (output-sized: tight instances do not separate)",
        fmt_fit(peaks),
    )
    assert peaks.within(1.5, 0.1)
