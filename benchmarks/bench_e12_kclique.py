"""E12 — Theorem 4.1: Nešetřil–Poljak k-clique via triangle + BMM.

The reduction turns k-clique into triangle detection on the r-clique
graph.  We measure both the reduction-based algorithm and naive
branch-and-bound on dense random graphs, reporting who wins and the
growth with n — the reason plain k-Clique cannot anchor n^k lower
bounds (and the weighted variants, Hypotheses 7/8, exist).
"""

import pytest

from repro.reductions import build_triangle_database, has_k_clique_np, split_k
from repro.solvers import has_k_clique_brute
from repro.workloads import random_graph

from benchmarks._harness import fit, fmt_fit, fmt_seconds, sweep

K = 4


def dense_graph(n):
    """A dense K4-free graph: complete tripartite skeleton thinned at
    random.  Clique number ≤ 3, so neither algorithm can early-exit —
    both pay their full exhaustive cost (the fair comparison)."""
    import random as _random

    rng = _random.Random(n)
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if u % 3 != v % 3 and rng.random() < 0.75:
                graph.add_edge(u, v)
    return graph


def test_e12_np_vs_brute(benchmark, experiment_report):
    brute_sizes = [16, 22, 30, 40]
    np_sizes = [24, 36, 54, 80]  # larger ladder: stabler slope

    def run():
        import time

        np_points, brute_points = [], []
        for n in brute_sizes:
            graph = dense_graph(n)
            start = time.perf_counter()
            got_brute = has_k_clique_brute(graph, K)
            brute_points.append((n, time.perf_counter() - start))
            assert got_brute == has_k_clique_np(graph, K)
        for n in np_sizes:
            graph = dense_graph(n)
            start = time.perf_counter()
            has_k_clique_np(graph, K)
            np_points.append((n, time.perf_counter() - start))
        return np_points, brute_points

    np_points, brute_points = benchmark.pedantic(run, rounds=1, iterations=1)
    np_fit = fit(np_points)
    experiment_report.row(
        f"{K}-clique via triangle reduction, time vs n",
        "Õ(n^{ω⌊k/3⌋+i}) — sub-n^k (Thm 4.1)",
        fmt_fit(np_fit),
    )
    experiment_report.row(
        f"{K}-clique branch-and-bound, time vs n",
        "n^k-ish on dense graphs",
        fmt_fit(fit(brute_points)),
    )


def test_e12_clique_graph_size_accounting(benchmark, experiment_report):
    def run():
        rows = []
        for n in (12, 16, 22, 30):
            graph = dense_graph(n)
            db = build_triangle_database(graph, K)
            rows.append((n, db.size()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    growth = fit(rows)
    r1, r2, r3 = split_k(K)
    predicted = r1 + r2 + r2 + r3  # dominant side pair ~ n^{r_i + r_j}
    experiment_report.row(
        "triangle-instance size vs n (k=4 → parts 1,1,2)",
        f"O(n^{predicted}) potential pairs",
        fmt_fit(growth),
    )
    assert growth.exponent < predicted + 1.0


def test_e12_single_detection(benchmark):
    graph = dense_graph(30)
    benchmark(lambda: has_k_clique_np(graph, K))
