"""A6 — execution-backend matrix: python (hash sets) vs columnar (NumPy).

Runs the same workloads through both storage/execution backends and
checks the columnar backend's contract from the PR that introduced it:

- **triangle join** (AGM-tight instance, binary left-deep plan): the
  classic Θ(m^{3/2})-output instance, dominated by bulk hash joins;
- **Yannakakis** (acyclic chain, ≥ 10^5 tuples): dominated by the
  semijoin full reducer and output-sized joins.

Asserted: results identical across backends, and the columnar backend
at least 5× faster on both workloads (measured headroom is well above
that — typically 15–80×).  Timings of every run are appended to
``benchmarks/BENCH_backends.json`` so later PRs can diff the perf
trajectory and catch regressions.
"""

import time

from repro.joins import left_deep_plan_join, yannakakis_full
from repro.query import catalog
from repro.workloads import agm_tight_triangle_db, functional_path_db

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

TRIANGLE_M = 3000  # ≥ 300 required; 3000 keeps the python side < 1s
CHAIN_LENGTH = 4
CHAIN_M = 100_000
MIN_SPEEDUP = 5.0

TRIANGLE_QUERY = catalog.triangle_query(boolean=False)
CHAIN_QUERY = catalog.path_query(CHAIN_LENGTH, boolean=False).as_join_query()


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def test_a6_triangle_backend_matrix(benchmark, experiment_report):
    databases = {
        backend: agm_tight_triangle_db(TRIANGLE_M, backend=backend)
        for backend in ("python", "columnar")
    }

    def run():
        results, seconds = {}, {}
        for backend, db in databases.items():
            results[backend], seconds[backend] = _timed(
                lambda db=db: left_deep_plan_join(TRIANGLE_QUERY, db)
            )
        return results, seconds

    results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    answers = {
        backend: sorted(frame.to_tuples())
        for backend, frame in results.items()
    }
    assert answers["python"] == answers["columnar"]  # identical output
    speedup = seconds["python"] / seconds["columnar"]
    experiment_report.row(
        f"triangle join, AGM-tight m={TRIANGLE_M}",
        f"columnar ≥ {MIN_SPEEDUP:.0f}x faster",
        f"{speedup:.1f}x (python {fmt_seconds(seconds['python'])}, "
        f"columnar {fmt_seconds(seconds['columnar'])}, "
        f"|out|={len(answers['python'])})",
    )
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": "triangle_agm_ldp",
                "backend": backend,
                "m": TRIANGLE_M,
                "seconds": seconds[backend],
            }
            for backend in seconds
        ],
    )
    assert speedup >= MIN_SPEEDUP


def test_a6_yannakakis_backend_matrix(benchmark, experiment_report):
    databases = {
        backend: functional_path_db(
            CHAIN_LENGTH, CHAIN_M, seed=3, backend=backend
        )
        for backend in ("python", "columnar")
    }

    def run():
        results, seconds = {}, {}
        for backend, db in databases.items():
            results[backend], seconds[backend] = _timed(
                lambda db=db: yannakakis_full(CHAIN_QUERY, db)
            )
        return results, seconds

    results, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    answers = {
        backend: sorted(frame.to_tuples())
        for backend, frame in results.items()
    }
    assert answers["python"] == answers["columnar"]  # identical output
    speedup = seconds["python"] / seconds["columnar"]
    experiment_report.row(
        f"Yannakakis, chain len={CHAIN_LENGTH}, m={CHAIN_M} per relation",
        f"columnar ≥ {MIN_SPEEDUP:.0f}x faster",
        f"{speedup:.1f}x (python {fmt_seconds(seconds['python'])}, "
        f"columnar {fmt_seconds(seconds['columnar'])}, "
        f"|out|={len(answers['python'])})",
    )
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": "yannakakis_chain",
                "backend": backend,
                "m": CHAIN_M * CHAIN_LENGTH,
                "seconds": seconds[backend],
            }
            for backend in seconds
        ],
    )
    assert speedup >= MIN_SPEEDUP
