"""E5 — Lemma 3.9 / Corollary 3.11: counting star queries is hard.

The lemma encodes k'-Dominating-Set into counting q*_k.  We execute
the encoding end to end and measure the counting cost's growth with
the star width k — the quantity Corollary 3.11 says must appear in the
exponent (time m^{k-ε} is impossible under SETH).
"""

import pytest

from repro.counting import count_answers
from repro.db.database import Database
from repro.db.relation import Relation
from repro.query import catalog
from repro.reductions import DominatingSetToStarCounting
from repro.solvers import has_dominating_set
from repro.workloads.instances import dominating_set_instance

from benchmarks._harness import fit, fmt_fit, sweep


def worst_case_star_db(m, z_domain=4):
    """R = [m/z] × [z]: every x pairs with every z — answers ≈ (m/z)^k."""
    rows = [(i, j) for i in range(max(m // z_domain, 1)) for j in range(z_domain)]
    db = Database()
    db.add_relation(Relation("R", 2, rows))
    return db


@pytest.mark.parametrize("k", [2, 3])
def test_e5_star_counting_exponent(k, benchmark, experiment_report):
    query = catalog.star_query(k)
    sizes = [80, 160, 320] if k == 3 else [200, 400, 800, 1600]

    def run():
        return fit(
            sweep(
                sizes,
                worst_case_star_db,
                lambda db: count_answers(query, db),
            )
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        f"count q*_{k} on all-pairs instances",
        f"no O(m^{k}-ε) algorithm (Cor 3.11, SETH)",
        fmt_fit(result),
    )
    # The brute counter indeed pays ~m^k on these instances.
    assert result.exponent > k - 0.9


def test_e5_dominating_set_pipeline(benchmark, experiment_report):
    reduction = DominatingSetToStarCounting(2, 2)

    def run():
        outcomes = []
        for seed, plant in ((1, True), (2, False)):
            graph = dominating_set_instance(12, 14, 2, seed=seed, plant=plant)
            got = reduction.has_dominating_set(graph)
            expected = has_dominating_set(graph, 2)
            outcomes.append(got == expected)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(outcomes)
    experiment_report.row(
        "2-DS decided via counting q*_2",
        "count < n^{k'} iff dominating set exists",
        "verified on planted and unplanted instances",
    )
