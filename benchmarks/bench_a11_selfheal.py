"""A11 — the self-healing layer's two costs.

The self-healing storage additions (PR 7) must earn their keep in the
two places they touch, and both are asserted, not eyeballed:

- **incremental checkpoint write volume** — with a large cold
  relation and a small hot one, a checkpoint after mutating only the
  hot relation must write bytes proportional to the *hot* relation,
  not the database: asserted ``<= 2x`` the hot relation's own base
  snapshot size (the factor covers ``meta.json`` and the dictionary
  suffix riding along), and reported against the full-base write for
  the trajectory.
- **WAL-file follower catch-up** — bootstrapping a read replica over
  a checkpointed backlog straight from the leader's durable files
  (bulk ``np.load`` of the chain + streamed replay of coded WAL
  batches) vs the live-feed handshake (which ships full content and
  converges by per-tuple set diffing).  Both roads must land
  bit-identical content and stamp-exact handoff; the file road is
  asserted ``>= 3x`` faster on a 100k-op backlog.

Timings append to ``benchmarks/BENCH_backends.json`` for the perf
trajectory.  Set ``BENCH_SMOKE=1`` for tiny sizes with the speed
assertion skipped (the parity and write-volume assertions always
run; CI wires this into the bench-smoke matrix).
"""

import os
import time

from repro.db import attach
from repro.db import checkpoint as ckpt
from repro.engine.replication import FollowerSession, LeaderFeed
from repro.util.rng import make_rng

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

COLD_ROWS = 5_000 if SMOKE else 200_000
HOT_ROWS = 200 if SMOKE else 2_000
BACKLOG_OPS = 2_000 if SMOKE else 100_000
BATCH_ROWS = 1_000
# An incremental checkpoint may write at most this multiple of the
# touched relation's own base snapshot footprint.
MAX_INCREMENTAL_FACTOR = 2.0
# WAL-file catch-up must beat the live-feed bootstrap by this factor.
MIN_CATCHUP_SPEEDUP = 3.0


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _emit(workload, m, seconds):
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": workload,
                "backend": backend,
                "m": m,
                "seconds": value,
            }
            for backend, value in seconds.items()
        ],
    )


def _state(db):
    return {rel.name: set(map(tuple, rel)) for rel in db}


def test_a11_incremental_checkpoint_bytes(
    benchmark, experiment_report, tmp_path
):
    rng = make_rng(47)
    root = str(tmp_path / "incr-bench")
    db = attach(root, backend="columnar", sync="batch")
    db.ensure_relation("Cold", 2).add_all(
        [(rng.randrange(COLD_ROWS), rng.randrange(1024))
         for _ in range(COLD_ROWS)]
    )
    db.ensure_relation("Hot", 2).add_all(
        [(rng.randrange(1024), rng.randrange(1024))
         for _ in range(HOT_ROWS)]
    )

    def run():
        db.checkpoint(full=True)
        base = db.last_checkpoint
        # touch only Hot, with values the dictionary already holds
        db["Hot"].add_all(
            [(rng.randrange(1024), rng.randrange(1024))
             for _ in range(max(HOT_ROWS // 10, 1))]
        )
        _, full_seconds = _timed(lambda: db.checkpoint(full=True))
        full = db.last_checkpoint
        db["Hot"].add((1, 2))
        _, delta_seconds = _timed(db.checkpoint)
        return base, full, db.last_checkpoint, {
            "full": full_seconds,
            "incremental": delta_seconds,
        }

    base, full, delta, seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert not delta["full"]
    hot_bytes = sum(
        info["size"]
        for relpath, info in ckpt.read_manifest(root)["files"].items()
        if relpath.startswith(f"ckpt-{full['index']}/1.")
    )
    assert hot_bytes  # Hot's payloads live in the previous full base
    factor = delta["bytes_written"] / hot_bytes
    experiment_report.row(
        f"incremental checkpoint, 1 hot / {COLD_ROWS}-row cold",
        f"<= {MAX_INCREMENTAL_FACTOR}x the hot relation's "
        "base footprint",
        f"{delta['bytes_written']} B vs hot base {hot_bytes} B "
        f"({factor:.2f}x; full base wrote "
        f"{full['bytes_written']} B)",
    )
    # deterministic, so asserted even at smoke sizes
    assert factor <= MAX_INCREMENTAL_FACTOR
    assert delta["bytes_written"] < full["bytes_written"]
    # recovery over the chain stays exact
    expected = _state(db)
    db.close()
    recovered = attach(root)
    assert _state(recovered) == expected
    recovered.close()
    _emit("selfheal_checkpoint", COLD_ROWS + HOT_ROWS, seconds)


def test_a11_wal_file_catchup(benchmark, experiment_report, tmp_path):
    rng = make_rng(53)
    root = str(tmp_path / "catchup-bench")
    leader = attach(root, backend="columnar", sync="batch")
    rel = leader.ensure_relation("R", 2)
    rows = [
        (rng.randrange(BACKLOG_OPS), rng.randrange(4096))
        for _ in range(BACKLOG_OPS)
    ]
    # a leader that checkpoints periodically: most of the backlog sits
    # in the (bulk-loadable) chain, the recent tail in the WAL — the
    # shape a cold follower actually meets
    tail = max(len(rows) // 20, BATCH_ROWS)
    for i in range(0, len(rows) - tail, BATCH_ROWS):
        rel.add_all(rows[i : i + BATCH_ROWS])
    leader.checkpoint()
    for i in range(len(rows) - tail, len(rows), BATCH_ROWS):
        rel.add_all(rows[i : i + BATCH_ROWS])
    leader.flush()
    feed = LeaderFeed(leader)

    def run():
        seconds, built = {}, {}
        for _ in range(1 if SMOKE else 3):
            follower, elapsed = _timed(lambda: FollowerSession(feed))
            built["live_feed"] = follower
            seconds["live_feed"] = min(
                seconds.get("live_feed", elapsed), elapsed
            )
            follower, elapsed = _timed(
                lambda: FollowerSession(feed, catchup_path=root)
            )
            built["wal_files"] = follower
            seconds["wal_files"] = min(
                seconds.get("wal_files", elapsed), elapsed
            )
        return built, seconds

    built, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    # parity first: both roads land bit-identical content, and the
    # file road lands stamp-exact (the live handoff never reseeds)
    assert _state(built["live_feed"].db) == _state(leader)
    assert _state(built["wal_files"].db) == _state(leader)
    assert built["wal_files"]._leader_stamps == {
        r.name: r.mutation_stamp for r in leader
    }
    leader["R"].add((BACKLOG_OPS + 7, 7))
    summary = built["wal_files"].sync()
    assert summary["reseeded"] == 0
    assert _state(built["wal_files"].db) == _state(leader)

    speedup = seconds["live_feed"] / seconds["wal_files"]
    experiment_report.row(
        f"WAL-file catch-up, {BACKLOG_OPS}-op backlog",
        f"identical content + stamp-exact handoff, "
        f">= {MIN_CATCHUP_SPEEDUP}x vs live-feed bootstrap",
        f"{speedup:.1f}x (live {fmt_seconds(seconds['live_feed'])}, "
        f"files {fmt_seconds(seconds['wal_files'])})",
    )
    _emit("selfheal_catchup", BACKLOG_OPS, seconds)
    leader.close()
    if not SMOKE:
        assert speedup >= MIN_CATCHUP_SPEEDUP
