"""E1 — Theorem 3.1/3.7: acyclic Boolean queries are decidable in Õ(m).

Regenerates the claim by fitting the runtime exponent of the
Yannakakis algorithm on growing databases for acyclic queries, and
contrasting it with the worst-case-optimal evaluation of the (cyclic)
triangle query on AGM-tight instances, which cannot be linear.
"""

import pytest

from repro.joins import generic_join, yannakakis_boolean
from repro.query import catalog
from repro.workloads import agm_tight_triangle_db, random_database

from benchmarks._harness import fit, fmt_fit, sweep

PATH = catalog.path_query(3, boolean=True)
STAR = catalog.star_query_full(3).as_boolean()
TRIANGLE_JOIN = catalog.triangle_query(boolean=False)


def test_e1_acyclic_boolean_linear(benchmark, experiment_report):
    sizes = [2000, 4000, 8000, 16000]

    def run_sweeps():
        results = {}
        for query, name in ((PATH, "path3"), (STAR, "star3")):
            points = sweep(
                sizes,
                lambda m, q=query: random_database(q, m, max(m // 20, 5), seed=m),
                lambda db, q=query: yannakakis_boolean(q, db),
            )
            results[name] = fit(points)
        # The cyclic contrast: the *join* query on AGM-tight instances
        # must produce m^{3/2} answers, so no linear algorithm exists.
        tri_points = sweep(
            [400, 800, 1600, 3200],
            lambda m: agm_tight_triangle_db(m),
            lambda db: generic_join(TRIANGLE_JOIN, db),
        )
        results["triangle"] = fit(tri_points)
        return results

    results = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    for name in ("path3", "star3"):
        experiment_report.row(
            f"Yannakakis Boolean {name}",
            "Õ(m), exponent 1",
            fmt_fit(results[name]),
        )
        assert results[name].exponent < 1.6, (
            "acyclic Boolean evaluation should scale near-linearly"
        )
    experiment_report.row(
        "generic join on cyclic q△ (AGM-tight)",
        "Θ(m^1.5) on tight instances",
        fmt_fit(results["triangle"]),
    )
    assert results["triangle"].exponent > results["path3"].exponent


def test_e1_single_evaluation_benchmark(benchmark):
    db = random_database(PATH, 20000, 1000, seed=1)
    assert benchmark(lambda: yannakakis_boolean(PATH, db)) in (True, False)
