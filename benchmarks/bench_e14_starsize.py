"""E14 — Theorem 4.6: quantified star size bounds counting.

The star size k of an acyclic query lower-bounds counting at m^{k-ε}.
We verify the structural measure on the star family and measure that
the counting cost of q*_k indeed climbs with k on all-pairs instances,
while a star-size-1 (free-connex) query with the same data stays flat.
"""

import pytest

from repro.counting import count_answers
from repro.hypergraph import quantified_star_size
from repro.query import catalog

from benchmarks._harness import fit, fmt_fit
from benchmarks.bench_e05_star_counting import worst_case_star_db


def test_e14_star_size_values(benchmark, experiment_report):
    def run():
        return {
            k: quantified_star_size(catalog.star_query(k))
            for k in (1, 2, 3, 4)
        }

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    assert values == {1: 1, 2: 2, 3: 3, 4: 4}
    experiment_report.row(
        "quantified star size of q*_k",
        "exactly k ([39], Section 4.4)",
        str(values),
    )


def test_e14_counting_cost_climbs_with_star_size(
    benchmark, experiment_report
):
    """Exponent ladder: fitted counting exponents increase with k."""
    plans = {1: [2000, 4000, 8000], 2: [300, 600, 1200], 3: [60, 120, 240]}

    def run():
        fits = {}
        for k, sizes in plans.items():
            query = catalog.star_query(k)
            points = []
            for m in sizes:
                import time

                db = worst_case_star_db(m)
                start = time.perf_counter()
                count_answers(query, db)
                points.append((m, time.perf_counter() - start))
            fits[k] = fit(points)
        return fits

    fits = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, result in fits.items():
        bound = "Õ(m) (free-connex)" if k == 1 else f"≥ m^{k} (Thm 4.6)"
        experiment_report.row(
            f"count q*_{k} on all-pairs data",
            bound,
            fmt_fit(result),
        )
    assert fits[1].exponent < fits[2].exponent < fits[3].exponent + 0.6


def test_e14_star_size_one_stays_linear(benchmark, experiment_report):
    query = catalog.star_query(1)

    def run():
        import time

        points = []
        for m in (4000, 8000, 16000):
            db = worst_case_star_db(m)
            start = time.perf_counter()
            count_answers(query, db)
            points.append((m, time.perf_counter() - start))
        return points

    result = fit(benchmark.pedantic(run, rounds=1, iterations=1))
    experiment_report.row(
        "count q*_1 (star size 1, free-connex)",
        "Õ(m)",
        fmt_fit(result),
    )
    assert result.exponent < 1.6
