"""A7 — aggregation/direct-access/enumeration backend matrix.

PR 1's matrix (A6) covered the join stack; this one covers the answer
*computation* pipelines that now route through the columnar backend:

- **star counting** (q̂*_2, self-join free, ≥ 10^5 tuples): counting-
  semiring message passing over the join tree (Theorem 3.8's easy side);
- **4-chain counting** (full path query, near-functional relations):
  the same passing over a deeper tree;
- **lex direct access** (q̂*_2, trio-free order): Õ(m) preprocessing of
  the per-separator sorted blocks and prefix sums (Theorem 3.24);
- **enumeration** (4-chain): constant-delay preprocessing plus the
  delay over the answer stream (Theorem 3.17).

Asserted: results byte-identical across backends, and the columnar
backend ≥ 5× faster on the bulk workloads (both countings and the
direct-access preprocessing; measured headroom is 30–60×).
Enumeration preprocessing is reported but not held to 5× — its
columnar build ends in an output-sized ``tolist`` export, so the
measured gain is a more modest ~3–5×.  Timings are appended to
``benchmarks/BENCH_backends.json`` for the perf trajectory.

Set ``BENCH_SMOKE=1`` to run tiny sizes and skip the speedup
assertions (CI uses this to keep the harness from rotting without
paying benchmark runtimes).
"""

import os
import time

from repro.counting import count_answers
from repro.direct_access import LexDirectAccess
from repro.enumeration import ConstantDelayEnumerator
from repro.query import catalog
from repro.workloads import functional_path_db, random_star_db

from benchmarks._harness import emit_perf_trajectory, fmt_seconds

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

STAR_M = 2_000 if SMOKE else 200_000
CHAIN_M = 2_000 if SMOKE else 100_000
LEX_M = 2_000 if SMOKE else 120_000
ENUM_M = 1_000 if SMOKE else 30_000
CHAIN_LENGTH = 4
MIN_SPEEDUP = 5.0

BACKENDS = ("python", "columnar")
STAR_QUERY = catalog.star_query_full(2, self_join_free=True)
CHAIN_QUERY = catalog.path_query(CHAIN_LENGTH, boolean=False).as_join_query()
LEX_ORDER = ("z", "x1", "x2")


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _matrix(databases, run):
    results, seconds = {}, {}
    for backend, db in databases.items():
        results[backend], seconds[backend] = _timed(lambda db=db: run(db))
    return results, seconds


def _report_and_emit(
    experiment_report, workload, label, results_equal, seconds, m
):
    speedup = seconds["python"] / seconds["columnar"]
    experiment_report.row(
        label,
        "identical results, columnar faster",
        f"{speedup:.1f}x (python {fmt_seconds(seconds['python'])}, "
        f"columnar {fmt_seconds(seconds['columnar'])})",
    )
    emit_perf_trajectory(
        "backends",
        [
            {
                "workload": workload,
                "backend": backend,
                "m": m,
                "seconds": seconds[backend],
            }
            for backend in seconds
        ],
    )
    assert results_equal
    return speedup


def test_a7_star_counting_matrix(benchmark, experiment_report):
    databases = {
        backend: random_star_db(
            2, STAR_M, max(STAR_M // 40, 3), seed=7,
            self_join_free=True, backend=backend,
        )
        for backend in BACKENDS
    }
    (results, seconds) = benchmark.pedantic(
        lambda: _matrix(databases, lambda db: count_answers(STAR_QUERY, db)),
        rounds=1, iterations=1,
    )
    equal = (
        results["python"] == results["columnar"]
        and type(results["python"]) is type(results["columnar"])
    )
    speedup = _report_and_emit(
        experiment_report,
        "star2_count",
        f"count q̂*_2, m={2 * STAR_M}",
        equal,
        seconds,
        2 * STAR_M,
    )
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP


def test_a7_chain_counting_matrix(benchmark, experiment_report):
    databases = {
        backend: functional_path_db(
            CHAIN_LENGTH, CHAIN_M, seed=3, backend=backend
        )
        for backend in BACKENDS
    }
    (results, seconds) = benchmark.pedantic(
        lambda: _matrix(
            databases, lambda db: count_answers(CHAIN_QUERY, db)
        ),
        rounds=1, iterations=1,
    )
    equal = (
        results["python"] == results["columnar"]
        and type(results["python"]) is type(results["columnar"])
    )
    speedup = _report_and_emit(
        experiment_report,
        "chain4_count",
        f"count 4-chain, m={CHAIN_LENGTH * CHAIN_M}",
        equal,
        seconds,
        CHAIN_LENGTH * CHAIN_M,
    )
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP


def test_a7_lex_access_matrix(benchmark, experiment_report):
    databases = {
        backend: random_star_db(
            2, LEX_M, max(LEX_M // 30, 3), seed=11,
            self_join_free=True, backend=backend,
        )
        for backend in BACKENDS
    }
    (accessors, seconds) = benchmark.pedantic(
        lambda: _matrix(
            databases,
            lambda db: LexDirectAccess(STAR_QUERY, db, order=LEX_ORDER),
        ),
        rounds=1, iterations=1,
    )
    assert accessors["columnar"].store_backend == "columnar"
    total = len(accessors["python"])
    probes = sorted(
        {0, 1, total // 3, total // 2, total - 1} if total else set()
    )
    equal = len(accessors["columnar"]) == total and all(
        accessors["python"].access(i) == accessors["columnar"].access(i)
        for i in probes
    )
    speedup = _report_and_emit(
        experiment_report,
        "lex_preprocess",
        f"lex DA preprocessing, m={2 * LEX_M}, |out|={total}",
        equal,
        seconds,
        2 * LEX_M,
    )
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP


def test_a7_enumeration_matrix(benchmark, experiment_report):
    databases = {
        backend: functional_path_db(
            CHAIN_LENGTH, ENUM_M, seed=5, backend=backend
        )
        for backend in BACKENDS
    }

    def run():
        enumerators, seconds = _matrix(
            databases,
            lambda db: ConstantDelayEnumerator(CHAIN_QUERY, db),
        )
        answers = {b: set(e) for b, e in enumerators.items()}
        return enumerators, answers, seconds

    enumerators, answers, seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert enumerators["columnar"].store_backend == "columnar"
    equal = answers["python"] == answers["columnar"]
    speedup = _report_and_emit(
        experiment_report,
        "enum_preprocess",
        f"enumeration preprocessing, m={CHAIN_LENGTH * ENUM_M}, "
        f"|out|={len(answers['python'])}",
        equal,
        seconds,
        CHAIN_LENGTH * ENUM_M,
    )
    if not SMOKE:
        assert speedup >= 2.0  # tolist export bounds the gain; see docstring
