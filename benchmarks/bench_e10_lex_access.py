"""E10 — Theorem 3.24 / Lemma 3.23: lexicographic direct access.

The same query q̂*_2 under two orders: z-first (no disruptive trio —
layered tree, linear preprocessing, log access) vs x1 > x2 > z (the
disruptive trio — the honest implementation must materialize, and the
preprocessing grows with the output, which is superlinear in m).
"""

import pytest

from repro.direct_access import LexDirectAccess
from repro.query import catalog
from repro.workloads.databases import random_star_db

from benchmarks._harness import fit, fmt_fit, fmt_seconds, sweep

QUERY = catalog.star_query_full(2, self_join_free=True)
GOOD_ORDER = ("z", "x1", "x2")
TRIO_ORDER = ("x1", "x2", "z")


def star_db(m):
    # Few hubs: output is quadratic in m, the worst case for the
    # materializing side while the layered side stays linear.
    return random_star_db(2, m, max(m // 30, 3), seed=m, self_join_free=True)


def test_e10_good_order_preprocessing_linear(benchmark, experiment_report):
    sizes = [2000, 4000, 8000, 16000]

    def run():
        import time

        points = []
        for m in sizes:
            db = star_db(m)
            start = time.perf_counter()
            LexDirectAccess(QUERY, db, order=GOOD_ORDER)
            points.append((m, time.perf_counter() - start))
        return points

    result = fit(benchmark.pedantic(run, rounds=1, iterations=1))
    experiment_report.row(
        f"preprocessing, order {' > '.join(GOOD_ORDER)} (no trio)",
        "Õ(m) (Theorem 3.24)",
        fmt_fit(result),
    )
    assert result.exponent < 1.6


def test_e10_trio_order_preprocessing_superlinear(
    benchmark, experiment_report
):
    sizes = [500, 1000, 2000]

    def run():
        import time

        points = []
        for m in sizes:
            db = star_db(m)
            start = time.perf_counter()
            LexDirectAccess(QUERY, db, order=TRIO_ORDER, strict=False)
            points.append((m, time.perf_counter() - start))
        return points

    result = fit(benchmark.pedantic(run, rounds=1, iterations=1))
    experiment_report.row(
        f"preprocessing, order {' > '.join(TRIO_ORDER)} (disruptive trio)",
        "not Õ(m) (Lemma 3.23, Triangle Hyp)",
        fmt_fit(result),
    )
    assert result.exponent > 1.3


def test_e10_access_time_logarithmic(benchmark, experiment_report):
    import time

    db = star_db(16000)
    accessor = LexDirectAccess(QUERY, db, order=GOOD_ORDER)
    total = len(accessor)
    probes = [0, total // 7, total // 3, total // 2, total - 1]

    def run():
        start = time.perf_counter()
        for index in probes:
            accessor.access(index)
        return (time.perf_counter() - start) / len(probes)

    per_access = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report.row(
        f"access time at m=16000 ({total} answers)",
        "Õ(log m) per access",
        fmt_seconds(per_access) + "/access",
    )
    assert per_access < 0.01  # milliseconds, not proportional to m


def test_e10_single_access_benchmark(benchmark):
    db = star_db(8000)
    accessor = LexDirectAccess(QUERY, db, order=GOOD_ORDER)
    middle = len(accessor) // 2
    benchmark(lambda: accessor.access(middle))
