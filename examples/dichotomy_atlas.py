"""An atlas of the paper's query families under every dichotomy.

Classifies the whole catalog — triangle, cycles, paths, stars,
Loomis–Whitney, cliques — and prints one compact row per query, the
way one would eyeball Theorems 3.7, 3.13, 3.17, 3.24 and 3.26 at once.

Run:  python examples/dichotomy_atlas.py
"""

from repro import classify
from repro.query import catalog


def atlas_queries():
    yield catalog.triangle_query()
    yield catalog.cycle_query(4, boolean=True)
    yield catalog.cycle_query(5)
    yield catalog.path_query(2)
    yield catalog.path_query(3)
    yield catalog.free_connex_pair()[0]
    yield catalog.free_connex_pair()[1]
    yield catalog.star_query(2)
    yield catalog.star_query(3)
    yield catalog.star_query_sjf(2)
    yield catalog.star_query_full(2, self_join_free=True)
    yield catalog.loomis_whitney_query(4)
    yield catalog.loomis_whitney_query(5)
    yield catalog.clique_query(3)
    yield catalog.matrix_multiplication_query()


def tick(flag: bool) -> str:
    return "yes" if flag else "no"


def main() -> None:
    header = (
        f"{'query':<16} {'acyclic':<8} {'free-cx':<8} {'rho*':<6} "
        f"{'star':<5} {'bool':<6} {'count':<6} {'enum':<6} {'access':<6}"
    )
    print(header)
    print("-" * len(header))
    for query in atlas_queries():
        report = classify(query)
        row = (
            f"{report.query_name:<16} "
            f"{tick(report.acyclic):<8} "
            f"{tick(report.free_connex):<8} "
            f"{report.agm_exponent:<6.2f} "
            f"{report.quantified_star_size:<5} "
            f"{tick(report.verdict('boolean').tractable):<6} "
            f"{tick(report.verdict('counting').tractable):<6} "
            f"{tick(report.verdict('enumeration').tractable):<6} "
            f"{tick(report.verdict('direct-access').tractable):<6}"
        )
        print(row)
    print()
    print("Column key: tractable = within the paper's target resource")
    print("(linear time / linear preprocessing with constant delay or")
    print("logarithmic access), per Theorems 3.7, 3.13, 3.17, 3.18.")


if __name__ == "__main__":
    main()
