"""Quickstart: parse a query, classify it, and run every evaluation task.

Run:  python examples/quickstart.py
"""

from repro import (
    ConstantDelayEnumerator,
    LexDirectAccess,
    classify,
    count_answers,
    parse_query,
)
from repro.joins.yannakakis import yannakakis_boolean
from repro.workloads import random_database


def main() -> None:
    # A free-connex acyclic query: follows the paper's running theme
    # that the head shape decides tractability.
    query = parse_query("q(person, city) :- Lives(person, city), Hub(city)")
    print("Query:", query)
    print()

    # 1. Classify: which side of each dichotomy is this query on?
    print(classify(query).render())
    print()

    # 2. Build a random database and evaluate.
    db = random_database(query, tuples_per_relation=500, domain_size=80, seed=42)
    print(f"database size m = {db.size()} tuples")

    # Boolean: is there any answer?  (Theorem 3.1, linear time.)
    satisfiable = yannakakis_boolean(query.as_boolean(), db)
    print("satisfiable:", satisfiable)

    # Counting: how many answers?  (Theorem 3.13, linear time.)
    print("count:", count_answers(query, db))

    # Enumeration: stream answers with constant delay (Theorem 3.17).
    enumerator = ConstantDelayEnumerator(query, db)
    first_five = []
    for answer in enumerator:
        first_five.append(answer)
        if len(first_five) == 5:
            break
    print("first five answers:", first_five)

    # Direct access: jump straight to the middle of the sorted result
    # (Theorem 3.24 / Corollary 3.22).
    accessor = LexDirectAccess(query, db, order=("city", "person"))
    total = len(accessor)
    print(f"direct access: {total} answers;",
          f"median answer = {accessor.access(total // 2)}")


if __name__ == "__main__":
    main()
