"""Quickstart: the unified query engine.

One prepared query serves every evaluation task the paper's
dichotomies allow: the session classifies the query, plans the
cheapest admissible pipeline per capability (with the theorem
citations in ``explain()``), and keeps the answers live under
updates — no hand-wiring of counters, enumerators, or accessors.

The low-level single-algorithm API is still public; see
``examples/ranked_paging.py`` for direct use of
:class:`repro.LexDirectAccess` / :class:`repro.SumOrderDirectAccess`,
and ``examples/engine_serving.py`` for a serving workload (paged
reads interleaved with an update stream) on this facade.

Run:  python examples/quickstart.py
"""

from repro import Session, parse_query
from repro.semiring.semirings import COUNTING
from repro.workloads import random_database


def main() -> None:
    # A free-connex acyclic query: follows the paper's running theme
    # that the head shape decides tractability.
    query = parse_query("q(person, city) :- Lives(person, city), Hub(city)")
    db = random_database(query, tuples_per_relation=500, domain_size=80, seed=42)
    session = Session(db)
    print(f"database size m = {session.size()} tuples")
    print()

    # Prepare once: classify -> plan -> serving handle.  The plan
    # quotes the dichotomy theorems behind every pipeline choice.
    prepared = session.prepare(query, order=("city", "person"))
    print(prepared.explain())
    print()

    answers = prepared.run()

    # Counting (Theorem 3.13, linear time).
    total = len(answers)
    print("count:", total)

    # Constant-delay enumeration (Theorem 3.17): stream the first few.
    print("first five answers:", answers.first(5))

    # Direct access (Theorem 3.24 / Corollary 3.22): jump straight to
    # the middle of the (city > person)-sorted result, or grab a page.
    print("median answer:", answers[total // 2])
    print("a page:", answers.page(offset=total // 2, size=3))

    # Semiring aggregation (Section 4.1.2).
    print("aggregate (counting semiring):", answers.aggregate(COUNTING))

    # Updates flow through the session; the prepared query never goes
    # stale (PR 3's delta maintenance underneath).
    hub_city = answers[0][1]  # answers are (person, city) head tuples
    session.discard("Hub", (hub_city,))
    print(f"after dropping hub {hub_city!r}: count = {len(answers)}")
    session.add("Hub", (hub_city,))
    print(f"after restoring it:         count = {len(answers)}")
    assert len(answers) == total


if __name__ == "__main__":
    main()
