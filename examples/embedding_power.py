"""Automatic lower-bound certification via clique embeddings (Sec 4.2).

The paper sketches, through Example 4.2/4.3, how embedding a clique
into a query's hypergraph certifies a conditional lower bound for
evaluating the query — and mentions this "can be developed into a
measure called clique embedding power" [41].  This example runs the
automatic embedding search on the cyclic catalog queries and prints,
per query:

- the AGM exponent ρ* (the worst-case-optimal *upper* bound), and
- the best certified exponent found (a *lower* bound for tropical
  aggregation under the Min-Weight-k-Clique Hypothesis),

so the remaining gap is visible at a glance.  Note the search improves
on Example 4.2's hand-made embedding: for the 5-cycle it certifies
m^{5/3}, not just m^{5/4}.

Run:  python examples/embedding_power.py
"""

from repro.hypergraph import agm_exponent
from repro.query import catalog
from repro.reductions import embedding_power_lower_bound


def main() -> None:
    queries = [
        catalog.triangle_query(boolean=False),
        catalog.cycle_query(4),
        catalog.cycle_query(5),
        catalog.cycle_query(6),
        catalog.loomis_whitney_query(4, boolean=False),
    ]
    header = (
        f"{'query':<14} {'rho* (upper)':<14} {'certified (lower)':<18} "
        f"{'embedding':<24}"
    )
    print(header)
    print("-" * len(header))
    for query in queries:
        rho = agm_exponent(query.hypergraph())
        power, embedding = embedding_power_lower_bound(
            query, max_clique_size=6, max_block=3
        )
        description = "-"
        if embedding is not None:
            blocks = ", ".join(
                "{" + ",".join(sorted(block)) + "}"
                for block in embedding.psi
            )
            description = f"K{embedding.clique_size}: {blocks}"
        print(
            f"{query.name:<14} m^{rho:<12.3f} m^{power:<16.3f} "
            f"{description}"
        )
    print()
    print(
        "Reading: evaluating/aggregating the query faster than the\n"
        "certified exponent would solve Min-Weight-k-Clique faster\n"
        "than n^k (Hypothesis 7); closing the gap to rho* is open."
    )


if __name__ == "__main__":
    main()
