"""The network service: sessions served over HTTP, SSE, replication.

PR 9's serving layer (:mod:`repro.server`) turns sessions into a
multi-tenant query service — stdlib-only asyncio HTTP/1.1 with
hand-rolled request parsing.  This example stands a server up on a
loopback port and walks the whole surface:

- two isolated tenants sharing one process (and one engine pool);
- ``prepare`` over the wire: the handle echoes the plan (family,
  backend, maintained count) exactly as ``explain()`` reports it;
- streamed NDJSON ingestion with read-your-writes: the upload's
  response arrives only after every update is applied;
- paged reads and semiring aggregates against the live handle;
- an SSE ``watch`` subscription observing each change exactly once;
- replication over HTTP: ``connect(replica_of="http://...")``
  bootstraps a local follower session from the served tenant and
  converges stamp-exact through delta pulls.

Run:  python examples/http_serving.py
"""

import threading

from repro import connect
from repro.server import ServerClient, ServerThread


def main() -> None:
    with ServerThread(flush_rows=1, flush_interval=0.005) as server:
        client = ServerClient(server.host, server.port)
        print(f"serving on {server.url}")

        # Two tenants, fully isolated, one process.
        client.create_db("store")
        client.create_db("metrics")
        client.add("metrics", "E", [(1, 1)])
        print(f"tenants: {client.databases()}")

        # Prepare returns a handle whose info mirrors explain().
        query = client.prepare(
            "store", "q(user, item) :- Clicks(user, item), Active(user)"
        )
        print(
            f"handle {query.handle}: family={query.info['family']}, "
            f"backend={query.info['backend']}"
        )

        # An SSE subscriber on a background thread sees every change.
        events = []
        ready = threading.Event()
        done = threading.Event()

        def watch() -> None:
            for event in query.watch(timeout=30):
                events.append(event.data["value"])
                ready.set()
                if event.data["value"] >= 4:
                    break
            done.set()

        # (A change event fires only when the answer count actually
        # moves — inserts that join nothing stay silent.)

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        assert ready.wait(10)  # the initial snapshot arrived

        # Streamed NDJSON ingestion: response == applied.
        summary = client.update_stream(
            "store",
            [
                {"relation": "Clicks", "row": [u, i]}
                for u, i in [(1, 10), (1, 20), (2, 30), (3, 40)]
            ]
            + [
                {"relation": "Active", "row": [u]}
                for u in (1, 2, 3)
            ],
        )
        print(f"ingested: {summary['accepted']} updates applied")

        # Paged reads + aggregates on the live handle.
        print(f"answers: {query.page(0, 10)}")
        print(f"count:   {query.count()}")
        print(f"boolean: {query.aggregate('boolean')}")
        assert query.count() == 4

        assert done.wait(10)
        print(f"watched values: {events}")
        # The Clicks rows land first but join no Active user yet, so
        # the count stays 0 (no event); each Active row then unlocks
        # that user's clicks: 0 -> 2 -> 3 -> 4, each change exactly
        # once, in order.
        assert events == [0, 2, 3, 4]

        # Replication over the wire: a local follower session.
        follower = connect(replica_of=client.replica_url("store"))
        rows = sorted(map(tuple, follower.db["Clicks"]))
        print(f"follower Clicks: {rows}")
        assert len(rows) == 4

        client.add("store", "Clicks", [(3, 50)])
        follower.sync()
        assert len(follower.db["Clicks"]) == 5
        stamps_match = all(
            follower.db[name].mutation_stamp
            == server.server.registry._tenants["store"]
            .session.db[name]
            .mutation_stamp
            for name in ("Clicks", "Active")
        )
        print(f"follower converged stamp-exact: {stamps_match}")
        assert stamps_match

        follower.close()
        client.close()
    print("server stopped; all resources released")


if __name__ == "__main__":
    main()
