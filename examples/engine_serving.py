"""Serving workload: paged reads interleaved with an update stream.

Simulates the production shape the engine targets: one prepared query
handles a stream of page requests (a UI scrolling through results
sorted by a lexicographic order) while single-tuple inserts and
deletes keep arriving.  The session routes execution to the columnar
backend (forced here; by default it switches above the planner's size
cutoff), where

- counts are maintained incrementally (delta messages folded up the
  join tree, :mod:`repro.dynamic`),
- the direct-access stores self-repair by splicing delta rows into
  their sorted blocks (:mod:`repro.direct_access.lex`),

so no request ever sees a stale answer or pays a full rebuild-per-read
(the ``rebuild-per-query`` oracle this replaces is ~15-30x slower at
scale; see ``benchmarks/bench_a08_dynamic.py``).

See ``examples/quickstart.py`` for the engine tour and
``examples/ranked_paging.py`` for the low-level direct-access API.

Run:  python examples/engine_serving.py
"""

import random

from repro import Session, parse_query
from repro.workloads import random_database

PAGE_SIZE = 8
ROUNDS = 40
UPDATES_PER_ROUND = 5


def main() -> None:
    query = parse_query(
        "q(user, item) :- Clicks(user, item), Active(user)"
    )
    db = random_database(
        query, tuples_per_relation=1500, domain_size=120, seed=7
    )
    session = Session(db)
    prepared = session.prepare(
        query, order=("user", "item"), backend="columnar"
    )
    print(prepared.explain())
    print()

    answers = prepared.run()
    rng = random.Random(1234)
    served_pages = 0
    applied_updates = 0

    for round_number in range(ROUNDS):
        # A burst of updates: clicks come and go, users (de)activate.
        for _ in range(UPDATES_PER_ROUND):
            relation = rng.choice(["Clicks", "Clicks", "Active"])
            if relation == "Clicks":
                row = (rng.randrange(120), rng.randrange(120))
            else:
                row = (rng.randrange(120),)
            if rng.random() < 0.45:
                session.discard(relation, row)
            else:
                session.add(relation, row)
            applied_updates += 1

        # A page request against the live result.
        total = len(answers)
        if total:
            offset = rng.randrange(total)
            page = answers.page(offset, min(PAGE_SIZE, total - offset))
            served_pages += 1
            if round_number % 10 == 0:
                print(
                    f"round {round_number:>2}: m={session.size()} "
                    f"answers={total} page@{offset} -> {page[:2]}..."
                )

    # Spot-check the stream never drifted from the ground truth.
    oracle = sorted(query.evaluate_brute_force(session.db))
    assert len(answers) == len(oracle)
    assert answers[:] == oracle
    print()
    print(
        f"served {served_pages} pages across {applied_updates} updates "
        "with zero stale answers and zero rebuild-per-read"
    )


if __name__ == "__main__":
    main()
