"""Paging through a join result without materializing it.

A web-shop style scenario: orders join customers, and a UI wants page
4711 of the results sorted by (customer, order) — or ranked by a
priority score.  Direct access (paper Section 3.4) serves any page in
logarithmic time after linear preprocessing, because the query below
is acyclic and the requested lexicographic order has no disruptive
trio (Theorem 3.24); the score ranking works because one atom covers
all variables after a rewrite — here we demonstrate the single-atom
case of Theorem 3.26.

This example drives the *low-level* API on purpose — constructing
:class:`repro.LexDirectAccess` / :class:`repro.SumOrderDirectAccess`
by hand.  For the facade that plans these pipelines automatically
(and keeps them live under updates) see ``examples/quickstart.py``
and ``examples/engine_serving.py`` (:mod:`repro.engine`).

Run:  python examples/ranked_paging.py
"""

from repro import LexDirectAccess, SumOrderDirectAccess, parse_query
from repro.workloads import random_database


PAGE_SIZE = 10


def page(accessor, number: int):
    """One page of results by repeated direct access."""
    start = number * PAGE_SIZE
    stop = min(start + PAGE_SIZE, len(accessor))
    return [accessor.access(i) for i in range(start, stop)]


def main() -> None:
    query = parse_query(
        "q(customer, order, item) :- "
        "Placed(customer, order), Contains(order, item)"
    )
    db = random_database(query, tuples_per_relation=3000, domain_size=150, seed=11)
    accessor = LexDirectAccess(
        query, db, order=("customer", "order", "item")
    )
    total = len(accessor)
    pages = (total + PAGE_SIZE - 1) // PAGE_SIZE
    print(f"{total} join results = {pages} pages, none materialized")
    middle = pages // 2
    print(f"page {middle}:")
    for row in page(accessor, middle):
        print("   ", row)
    print(f"last page ({pages - 1}):")
    for row in page(accessor, pages - 1):
        print("   ", row)
    print()

    # Sum-order ranking on a single-atom query (Theorem 3.26's
    # tractable case): rank items by a priority score.
    ranked_query = parse_query("r(order, item) :- Contains(order, item)")
    scores = {value: (value * 37) % 101 for value in range(150)}
    ranked = SumOrderDirectAccess(ranked_query, db, scores)
    print("three lowest-priority (order, item) pairs:")
    for i in range(3):
        row = ranked.access(i)
        print(f"    {row}  score={ranked.answer_weight(row):.0f}")
    print("probe: is there a pair with total score exactly 50?",
          ranked.has_weight(50.0))


if __name__ == "__main__":
    main()
