"""Semiring aggregation and clique embeddings (paper Section 4).

Two demonstrations:

1. Linear-time aggregation over a join tree: counting and min-weight
   answers for an acyclic join query (the FAQ view of Theorem 3.8).
2. Example 4.2/4.3 end to end: regenerate Figure 1, then solve
   Min-Weight-5-Clique by aggregating the 5-cycle query over the
   tropical semiring through the clique embedding.

Run:  python examples/weighted_aggregation.py
"""

from repro.query.catalog import path_query
from repro.reductions import example_5cycle_embedding, figure1_ascii
from repro.semiring import (
    COUNTING,
    MIN_PLUS,
    WeightedDatabase,
    aggregate_acyclic,
)
from repro.solvers import min_weight_k_clique_brute
from repro.workloads import random_database, random_weighted_graph


def main() -> None:
    # --- 1. FAQ-style aggregation on an acyclic join query ----------
    query = path_query(3)  # q(v1..v4) :- R1(v1,v2), R2(v2,v3), R3(v3,v4)
    db = random_database(query, tuples_per_relation=400, domain_size=30, seed=5)
    count = aggregate_acyclic(query, db, COUNTING)
    print(f"{query.name}: {count} answers (counted in one O(m) pass)")

    weighted = WeightedDatabase(db)
    for name in query.relation_symbols:
        for row in db[name]:
            weighted.set_weight(name, row, (hash(row) % 17))
    cheapest = aggregate_acyclic(
        query, db, MIN_PLUS, weighted.atom_weight_fn(query, MIN_PLUS)
    )
    print(f"{query.name}: min-weight answer costs {cheapest}")
    print()

    # --- 2. Figure 1 and Example 4.3 --------------------------------
    print(figure1_ascii())
    print()
    embedding = example_5cycle_embedding()
    print(
        "edge depths:", embedding.edge_depths(),
        "-> embedding power >=", embedding.power_lower_bound(),
    )
    graph, weights = random_weighted_graph(12, 52, seed=9)
    via_embedding = embedding.min_weight_clique(graph, weights)
    brute = min_weight_k_clique_brute(graph, 5, weights)
    print(
        "min-weight 5-clique:",
        f"via 5-cycle aggregation = {via_embedding},",
        f"brute force = {brute}",
    )
    print(
        "interpretation: beating Õ(m^{5/4}) for tropical 5-cycle "
        "aggregation would beat n^5 for Min-Weight-5-Clique "
        "(Example 4.3)."
    )


if __name__ == "__main__":
    main()
