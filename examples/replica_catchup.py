"""Self-healing storage: WAL-file catch-up, scrub, and repair.

Two operational stories the durability stack (PR 7) makes routine:

**Cold follower catch-up.**  A new read replica should not drag a
large backlog through the live ``delta_since`` protocol tuple by
tuple.  With filesystem access to the leader's durable directory
(``connect(path=..., replica_of=feed)``), the follower instead
composes the leader's incremental checkpoint chain with bulk
``np.load``\\ s, streams the rotated WAL segment files in bounded
batches, and — because WAL replay reproduces ``mutation_stamp``
sequences exactly — hands off to the live feed at a stamp-exact
boundary: the first ``sync()`` pulls precisely the ops that arrived
after the files were read, never a reseed.

**Scrub and repair.**  Disks lie.  ``DurableDatabase.verify()``
re-checks every checkpoint file and WAL segment against the
manifest's recorded CRC32s; after a bit flip, opening fails loudly
(a typed :class:`CorruptSnapshotError` — never silently wrong rows)
and ``DurableDatabase.repair()`` quarantines the damage and rebuilds
the newest provably-consistent state from what survives — here, the
full WAL history.

Run:  python examples/replica_catchup.py
"""

import os
import shutil
import tempfile

from repro import CorruptSnapshotError, DurableDatabase, connect
from repro.db import scrub
from repro.db.checkpoint import read_manifest
from repro.engine.replication import LeaderFeed
from repro.util.faultpoints import corrupt_file


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-catchup-")
    try:
        # --- a durable leader with a checkpointed backlog
        leader = connect(path=root, backend="columnar", sync="batch")
        for i in range(300):
            leader.add("Edge", (i, (i * 13) % 300))
        leader.db.checkpoint()
        for i in range(300, 400):
            leader.add("Edge", (i, (i * 13) % 400))
        leader.db.rotate_wal()  # a sealed, checksummed segment
        for i in range(400, 450):
            leader.add("Edge", (i, i))
        leader.db.flush()
        manifest = read_manifest(root)
        print(
            f"leader: {len(leader.db['Edge'])} rows across ckpt-1 + "
            f"{len(manifest['segments'])} sealed segment(s) + "
            f"{manifest['wal']}"
        )

        # --- a follower cold-starts from the leader's files
        follower = connect(path=root, replica_of=LeaderFeed(leader))
        assert len(follower.db["Edge"]) == len(leader.db["Edge"])
        print(
            f"follower caught up from WAL files: "
            f"{len(follower.db['Edge'])} rows, stamps exact"
        )

        # --- the stamp-exact handoff to the live feed
        leader.add("Edge", (999, 999))
        summary = follower.sync()
        assert summary["reseeded"] == 0, "handoff must be delta-exact"
        assert len(follower.db["Edge"]) == len(leader.db["Edge"])
        print(
            f"live handoff: 1 post-bootstrap op arrived as a plain "
            f"delta (reseeded={summary['reseeded']})"
        )
        leader.db.close()

        # --- scrub: a bit flip cannot hide from the manifest CRCs
        payload = sorted(
            f
            for f in read_manifest(root)["files"]
            if not f.endswith("meta.json")
        )[0]
        corrupt_file(os.path.join(root, payload), "bitflip")
        report = scrub.verify(root)
        assert not report.ok
        print(
            f"scrub caught the bit flip: "
            f"{report.issues[0].kind} in {report.issues[0].artifact}"
        )
        try:
            connect(path=root)
            raise AssertionError("a corrupt open must fail loudly")
        except CorruptSnapshotError as exc:
            print(f"open refused (no silent wrong answers): {exc}")

        # --- repair: quarantine the damage, rebuild from what's left
        summary = DurableDatabase.repair(root)
        print(
            f"repaired via {summary['source']} "
            f"(quarantined: {summary['quarantined']})"
        )
        healed = connect(path=root)
        assert len(healed.db["Edge"]) == 451
        assert healed.db.verify().ok
        print(
            f"healed: {len(healed.db['Edge'])} rows recovered, "
            "verify clean"
        )
        healed.db.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
