"""Triangle detection three ways (paper Section 3.1.1).

Compares, on the same graphs:

1. the naive neighbor-intersection scan,
2. the Alon–Yuster–Zwick degree-split + matrix multiplication
   algorithm of Theorem 3.2, and
3. Proposition 3.3 in action: detecting the triangle *through* the
   4-cycle query, demonstrating that any cyclic graphlike query is at
   least as hard as triangle finding.

Run:  python examples/triangle_detection.py
"""

import time

from repro.query.catalog import cycle_query
from repro.reductions import TriangleToCyclicCQ
from repro.solvers import has_triangle_ayz, has_triangle_naive
from repro.workloads import triangle_free_graph


def timed(label, fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    print(f"  {label:<42} -> {result!s:<5} ({elapsed * 1e3:7.2f} ms)")
    return result


def main() -> None:
    for plant in (True, False):
        graph = triangle_free_graph(
            600, 4000, seed=7 if plant else 8, plant_triangle=plant
        )
        kind = "planted triangle" if plant else "triangle-free (bipartite)"
        print(f"graph: 600 vertices, ~4000 edges, {kind}")
        expected = timed("naive neighbor intersection", has_triangle_naive, graph)
        got_ayz = timed(
            "AYZ degree split + BMM (Theorem 3.2)", has_triangle_ayz, graph
        )
        reduction = TriangleToCyclicCQ(cycle_query(4, boolean=True))
        got_red = timed(
            "via the 4-cycle query (Proposition 3.3)",
            reduction.decide_triangle,
            graph,
        )
        assert got_ayz == got_red == expected == plant
        print()


if __name__ == "__main__":
    main()
