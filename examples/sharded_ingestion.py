"""Batched ingestion and merge-based aggregation over N shards.

The out-of-core shape the sharded backend targets: data arrives in
large batches, each batch is encoded once and hash-routed to its
owning shards in one vectorized pass, and aggregate queries are
answered by computing one FAQ message *per shard* and merging the
messages — a ``group_reduce`` over their concatenation in the
separator domain.  No array larger than one shard (plus that domain)
is materialized on the aggregate path, which is what makes the layout
a blueprint for parallel and out-of-core execution: shards share
nothing but the append-only value dictionary.

Single-tuple updates route to the owning shard's delta segments, so
prepared queries stay live across the stream exactly as on the
unsharded backends.

See ``benchmarks/bench_a09_sharding.py`` for the measured ingestion
throughput and the asserted zero-global-materialization property.

Run:  python examples/sharded_ingestion.py
"""

import random

from repro import Session
from repro.db import Database
from repro.db.sharded import coalesced_row_peak, reset_coalesced_row_peak
from repro.semiring.semirings import COUNTING, MIN_PLUS

SHARDS = 4
BATCHES = 5
BATCH_ROWS = 5_000
DOMAIN = 400


def main() -> None:
    rng = random.Random(42)
    db = Database(backend="sharded", shard_count=SHARDS)
    db.ensure_relation("Clicks", 2)
    db.ensure_relation("Purchases", 2)

    # --- batched ingestion: one encode + one routing pass per batch
    for batch_number in range(BATCHES):
        batch = [
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN // 4))
            for _ in range(BATCH_ROWS)
        ]
        db["Clicks"].add_all(batch)
        db["Purchases"].add_all(
            [
                (rng.randrange(DOMAIN // 4), rng.randrange(DOMAIN))
                for _ in range(BATCH_ROWS // 2)
            ]
        )
        sizes = db["Clicks"].shard_sizes()
        print(
            f"batch {batch_number + 1}: Clicks shards {sizes} "
            f"(total {sum(sizes)})"
        )

    # --- serve through the engine; the plan reports the partitioning
    session = Session(db)
    prepared = session.prepare(
        "q(item, user, buyer) :- Clicks(user, item), "
        "Purchases(item, buyer)"
    )
    print()
    print(prepared.explain())
    print()

    # --- merge-based aggregation: one message per shard, then merge
    answers = prepared.run()
    reset_coalesced_row_peak()
    total = answers.aggregate(COUNTING)
    cheapest = answers.aggregate(MIN_PLUS)
    print(f"answers: {total}, min-plus aggregate: {cheapest}")
    print(
        "global (cross-shard) materializations on the aggregate path: "
        f"{coalesced_row_peak()} rows"
    )
    assert coalesced_row_peak() == 0

    # --- single-tuple updates route to the owning shard
    before = total
    session.add("Clicks", (DOMAIN + 1, 0))
    session.add("Purchases", (0, DOMAIN + 2))
    after = answers.aggregate(COUNTING)
    print(f"after 2 routed updates: {before} -> {after} answers")
    assert after >= before


if __name__ == "__main__":
    main()
