"""Parallel, spillable shard execution (PR 8).

Two knobs turn the sharded backend from "partitioned" into "uses the
hardware":

**Workers.**  ``connect(workers=N)`` (or the ``REPRO_WORKERS``
environment variable) puts a thread pool over the shards: per-shard
scans, co-partitioned join legs, and FAQ messages run concurrently
(the NumPy kernels release the GIL) and merge in shard-index order, so
every answer is bit-identical to serial execution.  ``explain()``
reports the executor the plan will dispatch through.

**Spill.**  ``connect(spill_dir=..., max_resident_shards=K)`` bounds
how many shards' compacted code matrices stay in RAM.  Cold shards are
written once as versioned ``.npy`` files and re-opened as
``np.memmap`` — touching one faults it back in and evicts the
least-recently-used resident shard, so a database larger than memory
still serves the full query suite.

Run:  python examples/parallel_aggregation.py
"""

import shutil
import tempfile

from repro import connect
from repro.semiring.semirings import COUNTING, MIN_PLUS


def main() -> None:
    spill_root = tempfile.mkdtemp(prefix="repro-spill-demo-")
    try:
        rows = {
            "R": [(i % 997, i % 131) for i in range(40_000)],
            "S": [(i % 131, i % 89) for i in range(30_000)],
        }
        serial = connect(rows, backend="sharded", workers=1)
        threaded = connect(
            rows,
            backend="sharded",
            workers=4,
            spill_dir=spill_root,
            max_resident_shards=2,
        )

        text = "q(x, y, z) :- R(x, y), S(y, z)"
        plan = threaded.prepare(text)
        print(plan.explain())
        print()

        # --- bit-identical answers, serial vs threaded
        expected = serial.prepare(text).run()
        answers = plan.run()
        assert len(answers) == len(expected)
        assert answers.aggregate(COUNTING) == expected.aggregate(COUNTING)
        assert answers.aggregate(MIN_PLUS) == expected.aggregate(MIN_PLUS)
        print(
            f"count={len(answers)}  "
            f"min-plus={answers.aggregate(MIN_PLUS)}  "
            "(identical under workers=1 and workers=4)"
        )

        # --- the spill pool is genuinely bounding residency
        pool = threaded.db.spill
        print(
            f"spill: {pool.resident_shards()} resident / "
            f"{pool.spilled_shards()} on disk "
            f"({pool.spilled_bytes()} bytes in {len(pool.spill_files())} "
            "memory-mapped files)"
        )

        # --- updates stay live: the maintainers fold each tuple into
        # the owning shard only, and answers reflect it immediately
        threaded.add("R", (5, 7))
        serial.add("R", (5, 7))
        threaded.discard("S", (0, 0))
        serial.discard("S", (0, 0))
        assert len(answers) == len(expected)
        print(f"after updates: count={len(answers)} (still in lockstep)")
    finally:
        shutil.rmtree(spill_root, ignore_errors=True)


if __name__ == "__main__":
    main()
