"""A durable session: checkpoint, crash, recover — answers unchanged.

The delta-segment op log that keeps prepared queries live (PR 3) is,
between barriers, already a write-ahead log; durability (PR 6) makes
that literal.  ``connect(path=...)`` opens a session whose every
update lands in a framed, CRC-checksummed WAL; ``checkpoint()``
snapshots the relations column-by-column and persists the prepared
plans; reopening the path *recovers* — checkpoint plus WAL suffix —
and re-prepares the plans warm.

This example runs the full lifecycle, including the ugly part: the
"crash" tears the last WAL record in half, exactly what a power cut
mid-append leaves behind.  Recovery truncates the torn tail and
resumes from the last fully-committed operation, and the recovered
session's answers are verified identical to the pre-crash oracle.

A replicated follower then tails the recovered leader through the
``delta_since`` protocol and serves the same answers from its own
session.

Run:  python examples/durable_session.py
"""

import os
import shutil
import tempfile

from repro import connect
from repro.db.checkpoint import read_manifest
from repro.engine.replication import FollowerSession, LeaderFeed


def answers_of(prepared):
    return set(map(tuple, prepared.run()))


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-durable-")
    try:
        # --- a durable session: every update is WAL-logged
        session = connect(path=root, backend="columnar", sync="always")
        for i in range(50):
            session.add("Follows", (f"u{i}", f"u{(i * 7) % 50}"))
            session.add("Active", (f"u{i}",))
        prepared = session.prepare(
            "q(a, b) :- Follows(a, b), Active(b)"
        )
        before = answers_of(prepared)
        print(f"serving {len(before)} answers from a durable session")

        # --- checkpoint: snapshot + WAL rotation + plan manifest
        session.checkpoint()
        session.discard("Active", ("u0",))
        session.add("Follows", ("u99", "u1"))
        session.add("Active", ("u99",))
        oracle = answers_of(
            session.prepare("q(a, b) :- Follows(a, b), Active(b)")
        )
        session.db.flush()
        # the manifest names the *active* WAL; the checkpoint also
        # sealed the previous epoch's file as an immutable segment
        active_wal = read_manifest(root)["wal"]
        print(
            f"checkpointed; {len(oracle)} answers now live in "
            f"ckpt-1 + {active_wal}"
        )

        # --- crash: tear the last WAL record in half, mid-byte
        wal_path = os.path.join(root, active_wal)
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as handle:
            handle.truncate(size - 7)
        print(f"simulated crash: tore the WAL tail ({size - 7}/{size} B)")

        # --- recover: torn record dropped, plans re-prepared warm
        recovered = connect(path=root, sync="always")
        assert len(recovered._prepared) == 1, "plan cache restarts warm"
        (warm_plan,) = recovered._prepared.values()
        after = answers_of(warm_plan)
        # the torn record was the *last* op; everything acked before
        # it survived bit-identically
        lost = oracle - after
        assert after <= oracle and len(lost) <= 1, (lost, after)
        print(
            f"recovered {len(after)} answers warm "
            f"(torn op dropped cleanly: {sorted(lost)})"
        )

        # --- a follower replicates the recovered leader
        follower = FollowerSession(LeaderFeed(recovered))
        recovered.add("Follows", ("u100", "u2"))
        recovered.add("Active", ("u100",))
        follower.sync()
        leader_answers = answers_of(
            recovered.prepare("q(a, b) :- Follows(a, b), Active(b)")
        )
        follower_answers = answers_of(
            follower.prepare("q(a, b) :- Follows(a, b), Active(b)")
        )
        assert follower_answers == leader_answers
        print(
            f"follower converged: {len(follower_answers)} answers, "
            "identical to the leader"
        )
        recovered.db.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
